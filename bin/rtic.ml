(* rtic — command-line front end for the real-time integrity constraint
   checker.

   Subcommands:
     rtic parse SPEC            validate a specification file
     rtic check SPEC TRACE      monitor a trace, report violations
     rtic recover SPEC DIR      inspect/salvage a crash-safe state dir
     rtic repair SPEC DIR       propose (or apply) constraint repairs
     rtic rules SPEC            show the compiled active-DBMS rules
     rtic explain SPEC TRACE    show violation witnesses
     rtic gen                   generate a synthetic trace
     rtic lint-json [FILE]      validate a JSON document (stdin by default)
     rtic profile [FILE]        aggregate an rtic-trace/1 stream (stdin)

   Exit codes, everywhere: 0 = success and every constraint holds;
   1 = the check ran but found violations (or: the linted document is
   invalid, the queried formula is false, the state dir is
   unrecoverable, a repair search came back unrepairable/inconclusive);
   2 = usage or internal error (unreadable file, parse failure, invalid
   flag combination); 3 = every constraint holds but only because
   repairs were applied (rtic check --on-error repair, rtic repair
   --apply). *)

module Schema = Rtic_relational.Schema
module Database = Rtic_relational.Database
module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser
module Pretty = Rtic_mtl.Pretty
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Valrel = Rtic_eval.Valrel
module Naive = Rtic_eval.Naive
module Codd = Rtic_eval.Codd
module Incremental = Rtic_core.Incremental
module Monitor = Rtic_core.Monitor
module Shared = Rtic_core.Shared
module Stats = Rtic_core.Stats
module Metrics = Rtic_core.Metrics
module Tracer = Rtic_core.Tracer
module Profile = Rtic_core.Profile
module Json = Rtic_core.Json
module Future = Rtic_core.Future
module Supervisor = Rtic_core.Supervisor
module Repair = Rtic_core.Repair
module Faults = Rtic_core.Faults
module Wal = Rtic_core.Wal
module Pool = Rtic_core.Pool
module Telemetry = Rtic_core.Telemetry
module Server = Rtic_core.Server
module Compile = Rtic_active.Compile
module Scenarios = Rtic_workload.Scenarios
module Gen = Rtic_workload.Gen

open Cmdliner

(* Delegate to the hardened fs record: reads to EOF (no length/size race),
   closes the channel on every path, and maps I/O exceptions to [Error]. *)
let read_file path = Faults.(real_fs.read_file) path

let ( let* ) r f = Result.bind r f

(* Usage and internal errors exit 2; exit 1 is reserved for "the check ran
   and found violations" (see the header comment). *)
let usage_error m =
  Printf.eprintf "rtic: %s\n" m;
  exit 2

let or_die = function
  | Ok v -> v
  | Error m -> usage_error m

let load_spec path =
  let* text = read_file path in
  Parser.spec_of_string text

let load_trace path =
  let* text = read_file path in
  Trace.parse text

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let run_parse spec_file =
  let spec = or_die (load_spec spec_file) in
  Printf.printf "catalog: %d relation(s)\n"
    (List.length (Schema.Catalog.names spec.Parser.catalog));
  List.iter
    (fun s -> Format.printf "  %a@." Schema.pp s)
    (Schema.Catalog.schemas spec.Parser.catalog);
  Printf.printf "constraints: %d\n" (List.length spec.Parser.defs);
  List.iter
    (fun (d : Formula.def) ->
      Format.printf "@.constraint %s:@.  %a@." d.name Pretty.pp d.body;
      (match Safety.monitorable spec.Parser.catalog d with
       | Error m -> Format.printf "  NOT MONITORABLE: %s@." m
       | Ok () ->
         Format.printf "  normalized:   %a@." Pretty.pp (Rewrite.normalize d.body);
         Format.printf "  past window:  %s@."
           (match Formula.time_reach d.body with
            | Some w -> string_of_int w ^ " ticks"
            | None -> "unbounded");
         Format.printf "  future horizon: %s@."
           (match Formula.future_reach d.body with
            | Some 0 -> "0 (pure past)"
            | Some w -> string_of_int w ^ " ticks (requires verdict delay)"
            | None -> "unbounded (not monitorable)")))
    spec.Parser.defs;
  0

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

type engine =
  | E_incremental
  | E_shared
  | E_naive
  | E_active
  | E_future

let split_defs spec =
  List.partition
    (fun (d : Formula.def) -> Formula.past_only d.body)
    spec.Parser.defs

let check_with_future ?tracer cat defs tr =
  (* verdict-delay monitoring for bounded-future constraints *)
  let* h = Trace.materialize tr in
  List.fold_left
    (fun acc (d : Formula.def) ->
      let* acc = acc in
      let* st = Future.create ?tracer cat d in
      let* st, out_rev =
        List.fold_left
          (fun acc (time, db) ->
            let* st, out_rev = acc in
            let* st, vs = Future.step st ~time db in
            Ok (st, List.rev_append vs out_rev))
          (Ok (st, []))
          (History.snapshots h)
      in
      let out = List.rev_append out_rev (Future.finish st) in
      let viols =
        List.filter_map
          (fun (v : Future.verdict) ->
            if v.satisfied then None
            else
              Some
                { Monitor.constraint_name = d.name;
                  position = v.index;
                  time = v.time })
          out
      in
      Ok (List.rev_append viols acc))
    (Ok []) defs
  |> Result.map List.rev

(* Incremental run with optional checkpoint restore/save. The restored
   monitor's database replaces the trace's initial state, so a saved run can
   be continued with a trace holding only the remaining transactions. *)
let run_incremental_with_state ?metrics ?tracer ?pool config cat past_defs
    (tr : Trace.t) load save want_stats =
  let* m =
    match load with
    | None ->
      Monitor.create_with ?metrics ?tracer ?pool ~config tr.Trace.init
        past_defs
    | Some path ->
      let* text = read_file path in
      Monitor.of_text ?metrics ?tracer ?pool ~config cat past_defs text
  in
  let* m, reports_rev, stats =
    List.fold_left
      (fun acc (time, txn) ->
        let* m, out_rev, stats = acc in
        let* m, rs = Monitor.step m ~time txn in
        Logs.info (fun k ->
            k "[%d] txn: %d violation(s), aux space %d" time (List.length rs)
              (Monitor.space m));
        let stats =
          if want_stats then
            Stats.observe stats ~time ~space:(Monitor.space m) ~reports:rs
          else stats
        in
        Ok (m, List.rev_append rs out_rev, stats))
      (Ok (m, [], Stats.empty))
      tr.Trace.steps
  in
  (match save with
   | Some path ->
     let oc = open_out path in
     output_string oc (Monitor.to_text m);
     close_out oc
   | None -> ());
  Ok (List.rev reports_rev, stats)

(* Crash-safe service mode (--state-dir): run the trace through a
   Supervisor instead of a bare Monitor. A fresh directory starts a new
   service; an existing one is recovered (checkpoint + WAL replay) and
   trace transactions that recovery already covered are skipped, so the
   same invocation can simply be re-run after a crash. *)
let run_supervised ?tracer ?pool ~ppf config cat past_defs (tr : Trace.t)
    state_dir auto_ck on_error aux_budget group_commit wal_format quiet
    want_stats want_json =
  let policy = or_die (Supervisor.policy_of_string on_error) in
  if group_commit < 1 then usage_error "--group-commit must be at least 1";
  let scfg =
    { Supervisor.default_config with
      auto_checkpoint = auto_ck;
      on_error = policy;
      aux_budget;
      group_commit;
      wal_format }
  in
  let metrics = if want_stats then Some (Metrics.create ()) else None in
  let sup, steps =
    if Supervisor.state_exists Faults.real_fs state_dir then begin
      let sup, info =
        or_die
          (Supervisor.recover ?metrics ?tracer ?pool ~config:scfg
             ~init:tr.Trace.init ~state_dir cat past_defs)
      in
      List.iter
        (fun (file, reason) ->
          Printf.eprintf "rtic: skipped corrupt checkpoint %s: %s\n" file
            reason)
        info.Supervisor.checkpoints_skipped;
      (match info.Supervisor.torn_tail with
       | Some reason -> Printf.eprintf "rtic: dropped torn WAL tail: %s\n" reason
       | None -> ());
      Printf.eprintf
        "rtic: recovered %d transaction(s) from %s (checkpoint %s, %d \
         replayed)\n"
        (Supervisor.steps sup) state_dir
        (match info.Supervisor.checkpoint_step with
         | Some s -> string_of_int s
         | None -> "none")
        info.Supervisor.replayed;
      (* Drop trace transactions recovery already covered. *)
      let already t =
        match Supervisor.last_time sup with
        | Some l -> t <= l
        | None -> false
      in
      let steps = List.filter (fun (t, _) -> not (already t)) tr.Trace.steps in
      let dropped = List.length tr.Trace.steps - List.length steps in
      if dropped > 0 then
        Printf.eprintf "rtic: %d trace transaction(s) already processed\n"
          dropped;
      (sup, steps)
    end
    else
      ( or_die
          (Supervisor.create ?metrics ?tracer ?pool ~config:scfg
             ~init:tr.Trace.init ~state_dir cat past_defs),
        tr.Trace.steps )
  in
  ignore config;
  let reports = ref [] in
  let dropped = ref 0 in
  let repaired_txns = ref 0 in
  let stats = ref Stats.empty in
  let handle time = function
    | Supervisor.Checked { reports = rs; inconclusive = _ } ->
        if not (quiet || want_json) then
          List.iter (fun r -> Format.fprintf ppf "%a@." Monitor.pp_report r) rs;
        if want_stats then
          stats :=
            Stats.observe !stats ~time ~space:(Supervisor.space sup)
              ~reports:rs;
        reports := List.rev_append rs !reports
      | Supervisor.Repaired { actions; witnesses; repaired = _;
                              inconclusive = _ } ->
        incr repaired_txns;
        if not (quiet || want_json) then
          List.iter
            (fun (op, by) ->
              Format.fprintf ppf "repaired at time %d: %a (fired by %s)@."
                time Rtic_relational.Update.pp_op op by)
            witnesses;
        ignore actions;
        if want_stats then
          stats :=
            Stats.observe !stats ~time ~space:(Supervisor.space sup)
              ~reports:[]
      | Supervisor.Unrepairable { reports = rs; unrepairable;
                                  inconclusive = _ } ->
        if not (quiet || want_json) then
          List.iter (fun r -> Format.fprintf ppf "%a@." Monitor.pp_report r) rs;
        List.iter
          (fun (c, off) ->
            Printf.eprintf
              "rtic: constraint %s is unrepairable at time %d (verdict \
               anchored in past states by %s)\n"
              c time off)
          unrepairable;
        if want_stats then
          stats :=
            Stats.observe !stats ~time ~space:(Supervisor.space sup)
              ~reports:rs;
        reports := List.rev_append rs !reports
    | Supervisor.Skipped reason | Supervisor.Rejected reason ->
      incr dropped;
      Printf.eprintf "rtic: dropped transaction at time %d: %s\n" time reason
  in
  if group_commit <= 1 then
    List.iter
      (fun (time, txn) -> handle time (or_die (Supervisor.step sup ~time txn)))
      steps
  else begin
    (* Group commit: outcomes are released in submission order when their
       batch flushes; pair them back with their commit times FIFO. *)
    let times = Queue.create () in
    let drain outs = List.iter (fun o -> handle (Queue.pop times) o) outs in
    List.iter
      (fun (time, txn) ->
        Queue.push time times;
        drain (or_die (Supervisor.submit sup ~time txn)))
      steps;
    drain (Supervisor.flush sup)
  end;
  (match Supervisor.quarantined sup with
   | [] -> ()
   | q ->
     Printf.eprintf
       "rtic: %d constraint(s) quarantined (verdicts inconclusive): %s\n"
       (List.length q)
       (String.concat ", " (List.map fst q)));
  if Supervisor.degraded sup then
    Printf.eprintf
      "rtic: durability degraded (a WAL or checkpoint write failed)\n";
  if want_json then
    (* Machine mode composes with the supervised run: the rtic-stats/1
       document (covering the transactions processed after recovery) is the
       only stdout output; diagnostics stay on stderr. *)
    print_endline (Json.to_string ~indent:true (Stats.to_json ?metrics !stats))
  else begin
    if want_stats then begin
      Format.fprintf ppf "%a@." Stats.pp !stats;
      match metrics with
      | Some m -> Format.fprintf ppf "%a@." Metrics.pp m
      | None -> ()
    end;
    Format.fprintf ppf "%d transaction(s), %d violation(s)%s%s@."
      (List.length steps)
      (List.length !reports)
      (if !repaired_txns > 0 then
         Printf.sprintf ", %d repaired" !repaired_txns
       else "")
      (if !dropped > 0 then Printf.sprintf ", %d dropped" !dropped else "")
  end;
  (* Exit 3: no violation stands, but only because repairs were applied —
     distinct from a clean 0 so callers can audit self-healed runs. *)
  if !reports <> [] then 1 else if !repaired_txns > 0 then 3 else 0

let run_check spec_file trace_file engine no_prune jobs quiet load save
    want_stats want_json want_trace trace_out state_dir auto_ck on_error
    aux_budget group_commit wal_format =
  let want_stats = want_stats || want_json in
  if jobs < 1 then usage_error "--jobs must be at least 1";
  if jobs > 1 && not (List.mem engine [ E_incremental; E_shared ]) then
    usage_error "--jobs requires --engine incremental or shared";
  if want_trace then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if (load <> None || save <> None) && engine <> E_incremental then
    usage_error "checkpointing requires --engine incremental";
  if want_stats && engine <> E_incremental then
    usage_error "--stats/--json require --engine incremental";
  (match trace_out with
   | None -> ()
   | Some dest ->
     if not (List.mem engine [ E_incremental; E_shared; E_future ]) then
       usage_error
         "--trace-out requires --engine incremental, shared or future";
     if dest = "-" && want_json then
       usage_error "--trace-out - conflicts with --json (both claim stdout)");
  let trace_oc, close_trace =
    match trace_out with
    | None -> (None, fun () -> ())
    | Some "-" -> (Some stdout, fun () -> flush stdout)
    | Some path ->
      let oc = open_out path in
      (Some oc, fun () -> close_out oc)
  in
  let tracer =
    Option.map
      (fun oc ->
        Tracer.create
          ~emit:(fun line ->
            output_string oc line;
            output_char oc '\n')
          ())
      trace_oc
  in
  (* With --trace-out -, the event stream owns stdout and every human line
     moves to stderr, so `rtic check --trace-out - | rtic profile` works. *)
  let ppf =
    if trace_out = Some "-" then Format.err_formatter else Format.std_formatter
  in
  let spec =
    or_die
      (Tracer.span tracer ~cat:"parse" ~name:"spec" ~arg:spec_file (fun () ->
           load_spec spec_file))
  in
  let tr =
    or_die
      (Tracer.span tracer ~cat:"parse" ~name:"trace" ~arg:trace_file
         (fun () -> load_trace trace_file))
  in
  let cat = spec.Parser.catalog in
  let config = { Incremental.prune = not no_prune } in
  let past_defs, future_defs = split_defs spec in
  let pool = if jobs > 1 then Some (Pool.create jobs) else None in
  let code =
  match state_dir with
  | Some dir ->
    if engine <> E_incremental then
      usage_error "--state-dir requires --engine incremental";
    if load <> None || save <> None then
      usage_error "--state-dir conflicts with --load-state/--save-state";
    if future_defs <> [] then
      usage_error
        "--state-dir supports past-only constraints (future operators need \
         verdict delay, which is not crash-safe)";
    run_supervised ?tracer ?pool ~ppf config cat past_defs tr dir auto_ck
      on_error aux_budget group_commit wal_format quiet want_stats want_json
  | None ->
    if
      on_error <> "halt" || auto_ck <> 64 || aux_budget <> None
      || group_commit <> 1 || wal_format <> 1
    then
      usage_error
        "--on-error/--auto-checkpoint/--aux-budget/--group-commit/\
         --wal-format require --state-dir";
  let metrics = if want_stats then Some (Metrics.create ()) else None in
  let stats = ref Stats.empty in
  let reports =
    match engine with
    | E_incremental ->
      let rs, st =
        or_die
          (run_incremental_with_state ?metrics ?tracer ?pool config cat
             past_defs tr load save want_stats)
      in
      stats := st;
      rs
    | E_shared -> or_die (Shared.run_trace ?tracer ?pool ~config past_defs tr)
    | E_naive -> or_die (Monitor.run_trace_naive past_defs tr)
    | E_active ->
      let h = or_die (Trace.materialize tr) in
      List.fold_left
        (fun acc (d : Formula.def) ->
          let* acc = acc in
          let* prog = Compile.compile cat d in
          let* _, _, viols =
            List.fold_left
              (fun acc (time, db) ->
                let* eng, idx, viols = acc in
                let* eng, ok = Compile.step eng ~time db in
                let viols =
                  if ok then viols
                  else
                    { Monitor.constraint_name = d.name; position = idx; time }
                    :: viols
                in
                Ok (eng, idx + 1, viols))
              (Ok (Compile.start prog, 0, []))
              (History.snapshots h)
          in
          Ok (viols @ acc))
        (Ok []) past_defs
      |> Result.map List.rev
      |> or_die
    | E_future -> or_die (check_with_future ?tracer cat spec.Parser.defs tr)
  in
  let reports =
    if engine = E_future then reports
    else begin
      if future_defs <> [] then
        Printf.eprintf
          "rtic: note: %d constraint(s) use future operators and were \
           checked by verdict delay\n"
          (List.length future_defs);
      reports @ or_die (check_with_future ?tracer cat future_defs tr)
    end
  in
  if want_json then
    (* Machine mode: the JSON document is the only stdout output; report
       lines and the human summary are suppressed. Exit code is unchanged. *)
    print_endline (Json.to_string ~indent:true (Stats.to_json ?metrics !stats))
  else begin
    if not quiet then
      List.iter (fun r -> Format.fprintf ppf "%a@." Monitor.pp_report r)
        reports;
    if want_stats then begin
      Format.fprintf ppf "%a@." Stats.pp !stats;
      match metrics with
      | Some m -> Format.fprintf ppf "%a@." Metrics.pp m
      | None -> ()
    end;
    Format.fprintf ppf "%d transaction(s), %d violation(s)@." (Trace.length tr)
      (List.length reports)
  end;
  if reports = [] then 0 else 1
  in
  Format.pp_print_flush ppf ();
  close_trace ();
  Option.iter Pool.shutdown pool;
  code

(* ------------------------------------------------------------------ *)
(* recover                                                             *)
(* ------------------------------------------------------------------ *)

(* Inspect a crash-safe state directory: report the WAL and every
   checkpoint, then attempt a recovery (read-only unless --repair).
   Exit 0 if the directory is recoverable, 1 if not, 2 on usage errors. *)
let run_recover spec_file dir repair =
  let spec = or_die (load_spec spec_file) in
  let cat = spec.Parser.catalog in
  let past_defs, _ = split_defs spec in
  let fs = Faults.real_fs in
  if not (Supervisor.state_exists fs dir) then
    usage_error (dir ^ " holds no WAL; not a supervisor state directory");
  (match fs.Faults.read_file (Supervisor.wal_path dir) with
   | Error m -> Printf.printf "wal: unreadable (%s)\n" m
   | Ok text ->
     (match Wal.recover text with
      | Error m -> Printf.printf "wal: corrupt header (%s)\n" m
      | Ok w ->
        Printf.printf "wal: start %d, %d record(s)%s\n" w.Wal.start
          (List.length w.Wal.records)
          (match w.Wal.torn with
           | Some reason -> ", torn tail (" ^ reason ^ ")"
           | None -> "")));
  List.iter
    (fun (step, path) ->
      match Supervisor.load_checkpoint ~fs cat past_defs path with
      | Ok _ -> Printf.printf "checkpoint %d: ok\n" step
      | Error m -> Printf.printf "checkpoint %d: corrupt (%s)\n" step m)
    (Supervisor.checkpoint_files fs dir);
  match
    Supervisor.recover ~fs ~repair ~state_dir:dir cat past_defs
  with
  | Error m ->
    Printf.printf "unrecoverable: %s\n" m;
    1
  | Ok (sup, info) ->
    Printf.printf "recoverable: %d transaction(s) (checkpoint %s, %d \
                   replayed)%s\n"
      (Supervisor.steps sup)
      (match info.Supervisor.checkpoint_step with
       | Some s -> string_of_int s
       | None -> "none")
      info.Supervisor.replayed
      (if info.Supervisor.repaired then "; repaired" else "");
    0

(* ------------------------------------------------------------------ *)
(* wal dump                                                            *)
(* ------------------------------------------------------------------ *)

(* Render a WAL file — either format — as rtic-wal/1 text on stdout. The
   v2 binary frames carry exactly the v1 record bodies, so the conversion
   is lossless, and dumping a clean v1 log is the identity. A torn tail is
   dropped with a warning (that is what recovery would do) and still
   exits 0; only an unreadable file or a damaged header is an error. *)
let run_wal_dump file =
  match Faults.real_fs.Faults.read_file file with
  | Error m ->
    Printf.eprintf "rtic: %s\n" m;
    1
  | Ok text ->
    (match Wal.recover text with
     | Error m ->
       Printf.eprintf "rtic: %s: %s\n" file m;
       1
     | Ok w ->
       print_string (Wal.encode ~start:w.Wal.start w.Wal.records);
       (match w.Wal.torn with
        | Some reason ->
          Printf.eprintf "rtic: %s: dropped torn tail after %d record(s): %s\n"
            file (List.length w.Wal.records) reason
        | None -> ());
       0)

(* ------------------------------------------------------------------ *)
(* repair                                                              *)
(* ------------------------------------------------------------------ *)

(* Constraint repair of a recovered state. Not to be confused with
   `rtic recover --repair`, which salvages *storage* (fresh checkpoint,
   WAL compaction) and never touches database content: this command asks
   whether the *data* can be healed. It recovers the state directory,
   runs the bounded founded-repair search of Rtic_core.Repair at the next
   commit time, prints the proposal (or, with --apply, commits it through
   the supervisor so the repair is journaled in the WAL and replayed by
   any later recovery), and exits 0 = already clean, 3 = a repair was
   found, 1 = unrepairable or inconclusive. *)
let run_repair spec_file dir apply at_time want_json max_steps max_candidates
    max_depth =
  if max_steps < 1 || max_candidates < 1 || max_depth < 1 then
    usage_error "--max-steps/--max-candidates/--max-depth must be at least 1";
  let spec = or_die (load_spec spec_file) in
  let cat = spec.Parser.catalog in
  let past_defs, future_defs = split_defs spec in
  if future_defs <> [] then
    usage_error
      "rtic repair supports past-only constraints (supervised state holds \
       no verdict-delay buffers)";
  let fs = Faults.real_fs in
  if not (Supervisor.state_exists fs dir) then
    usage_error (dir ^ " holds no WAL; not a supervisor state directory");
  let sup, _info =
    or_die (Supervisor.recover ~fs ~repair:apply ~state_dir:dir cat past_defs)
  in
  let next =
    match Supervisor.last_time sup with Some l -> l + 1 | None -> 0
  in
  let time =
    match at_time with
    | None -> next
    | Some t when t >= next -> t
    | Some t ->
      usage_error
        (Printf.sprintf
           "--at-time %d is not after the last commit time %d" t (next - 1))
  in
  let budget = { Repair.max_steps; max_candidates; max_depth } in
  let skip name = List.mem_assoc name (Supervisor.quarantined sup) in
  let outcome =
    or_die
      (Repair.search ~budget ~checkers:(Supervisor.checkers sup) ~skip ~time
         (Supervisor.database sup))
  in
  let op_str o = Format.asprintf "%a" Rtic_relational.Update.pp_op o in
  let emit_json fields =
    print_endline
      (Json.to_string ~indent:true
         (Json.Obj
            ([ ("schema", Json.Str "rtic-repair/1");
               ("state_dir", Json.Str dir);
               ("time", Json.Int time) ]
            @ fields)))
  in
  match outcome with
  | Repair.Clean ->
    if want_json then emit_json [ ("outcome", Json.Str "clean") ]
    else Printf.printf "clean: every constraint holds at time %d\n" time;
    0
  | Repair.Repaired { actions; witnesses; healed; oracle_steps; db = _ } ->
    let applied =
      if not apply then false
      else begin
        (match or_die (Supervisor.step sup ~time actions) with
         | Supervisor.Checked { reports = []; _ } -> ()
         | Supervisor.Checked { reports; _ } ->
           usage_error
             (Printf.sprintf
                "internal: applied repair left %d violation(s)"
                (List.length reports))
         | _ -> usage_error "internal: unexpected outcome applying repair");
        true
      end
    in
    if want_json then
      emit_json
        [ ("outcome", Json.Str "repaired");
          ("applied", Json.Bool applied);
          ("actions", Json.List (List.map (fun o -> Json.Str (op_str o)) actions));
          ("witnesses",
           Json.List
             (List.map
                (fun (w : Repair.witness) ->
                  Json.Obj
                    [ ("action", Json.Str (op_str w.Repair.action));
                      ("fired_by", Json.Str w.Repair.fired_by) ])
                witnesses));
          ("healed", Json.List (List.map (fun c -> Json.Str c) healed));
          ("oracle_steps", Json.Int oracle_steps) ]
    else begin
      List.iter
        (fun (w : Repair.witness) ->
          Printf.printf "repair: %s (fired by %s)\n" (op_str w.Repair.action)
            w.Repair.fired_by)
        witnesses;
      Printf.printf "heals: %s\n" (String.concat ", " healed);
      if applied then
        Printf.printf "applied %d action(s) at time %d (journaled in %s)\n"
          (List.length actions) time (Supervisor.wal_path dir)
      else
        Printf.printf
          "proposal only; re-run with --apply to commit at time %d\n" time
    end;
    3
  | Repair.Unrepairable stuck ->
    if want_json then
      emit_json
        [ ("outcome", Json.Str "unrepairable");
          ("unrepairable",
           Json.List
             (List.map
                (fun (u : Repair.unrepairable) ->
                  Json.Obj
                    [ ("constraint", Json.Str u.Repair.constraint_name);
                      ("offending", Json.Str u.Repair.offending);
                      ("reason", Json.Str u.Repair.reason) ])
                stuck)) ]
    else
      List.iter
        (fun (u : Repair.unrepairable) ->
          Printf.printf "unrepairable: %s (offending subformula: %s)\n"
            u.Repair.constraint_name u.Repair.offending)
        stuck;
    1
  | Repair.Inconclusive { reason; oracle_steps; candidates } ->
    if want_json then
      emit_json
        [ ("outcome", Json.Str "inconclusive");
          ("reason", Json.Str reason);
          ("oracle_steps", Json.Int oracle_steps);
          ("candidates", Json.Int candidates) ]
    else Printf.printf "inconclusive: %s\n" reason;
    1

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

(* SIGTERM/SIGINT request a clean shutdown: the handler raises, the
   serving loop unwinds through its Fun.protect cleanup (socket unlink,
   listener close, pool shutdown, trace flush) and exits 0. *)
exception Terminated

(* Pump one connected stream: read chunks, feed the complete lines of each
   chunk to the server, then drain and write one reply line per request.
   Draining once per chunk (not per line) is what makes the admission bound
   observable: a pipelined burst larger than --max-pending arrives as one
   chunk and its tail gets explicit `overloaded` replies. Returns on peer
   EOF or after a shutdown request was executed. *)
let pump_stream srv ~read ~write =
  write (Server.hello ^ "\n");
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let reply_all () =
    List.iter (fun r -> write (r ^ "\n")) (Server.drain srv)
  in
  let rec loop () =
    if not (Server.stopped srv) then begin
      let n = read chunk in
      if n = 0 then begin
        (* EOF: a final unterminated line still counts as a line *)
        if Buffer.length buf > 0 then begin
          Server.feed_line srv (Buffer.contents buf);
          Buffer.clear buf
        end;
        reply_all ()
      end
      else begin
        for i = 0 to n - 1 do
          match Bytes.get chunk i with
          | '\n' ->
            Server.feed_line srv (Buffer.contents buf);
            Buffer.clear buf
          | c -> Buffer.add_char buf c
        done;
        reply_all ();
        loop ()
      end
    end
  in
  loop ()

(* ---------------- the multi-client socket transport ---------------- *)

(* One accepted client: its connection handle into the shared engine, the
   partial trailing input line, and the reply bytes awaiting write.
   [out_off] is the flushed prefix of [out] — writes consume the buffer
   front-to-back without re-copying what already went out. *)
type client = {
  fd : Unix.file_descr;
  conn : Server.conn;
  inbuf : Buffer.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable eof : bool;   (* peer closed its writing end; flush, then drop *)
  mutable dead : bool;  (* connection failed; drop without flushing *)
}

(* Per-connection backpressure: once a client has this many unwritten
   reply bytes we stop reading from it, so it cannot submit new work (and
   pin the shared admission budget) faster than it consumes replies. Its
   already-admitted requests still execute — at most max_pending more
   replies land in the buffer — so the budget always drains back to the
   other clients. *)
let out_hiwater = 256 * 1024

(* Fair-drain quantum: each select cycle round-robins the connections,
   executing at most this many queued requests per connection per turn
   until every queue is empty, so one client's pipelined burst interleaves
   with the others instead of running to completion first. *)
let drain_quantum = 32

let out_pending c = Buffer.length c.out - c.out_off

let close_client clients c =
  Hashtbl.remove clients c.fd;
  Server.disconnect c.conn;
  (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* Write what the socket will take without blocking; mark the client dead
   on a connection error (EPIPE/ECONNRESET/...), which drops only this
   client. *)
let flush_client c =
  let len = min (out_pending c) 65536 in
  if len > 0 && not c.dead then begin
    match
      Unix.write_substring c.fd (Buffer.contents c.out) c.out_off len
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.dead <- true
    | n ->
      c.out_off <- c.out_off + n;
      if c.out_off = Buffer.length c.out then begin
        Buffer.clear c.out;
        c.out_off <- 0
      end
  end

let feed_chunk c chunk n =
  for i = 0 to n - 1 do
    match Bytes.get chunk i with
    | '\n' ->
      Server.conn_feed_line c.conn (Buffer.contents c.inbuf);
      Buffer.clear c.inbuf
    | ch -> Buffer.add_char c.inbuf ch
  done

let read_client c chunk =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> c.dead <- true
  | 0 ->
    (* EOF: a final unterminated line still counts as a line *)
    if Buffer.length c.inbuf > 0 then begin
      Server.conn_feed_line c.conn (Buffer.contents c.inbuf);
      Buffer.clear c.inbuf
    end;
    c.eof <- true
  | n -> feed_chunk c chunk n

(* ---------------- the metrics side channel ---------------- *)

(* A metrics-socket client is one-shot: it sends one request line and the
   server answers once and closes. "json" gets the rtic-metrics/1
   document; an HTTP GET (a Prometheus scraper pointed at the socket)
   gets a minimal HTTP/1.0 response — text exposition, or the JSON
   document when the path mentions "json"; anything else ("prom",
   "metrics", a bare newline) gets the text exposition. Scrapes never
   enter the request queue or touch the admission budget: the snapshot is
   read directly under the engine lock, so monitoring keeps working while
   every main-socket client is wedged or the queue is full. *)
type mclient = {
  m_fd : Unix.file_descr;
  m_in : Buffer.t;
  m_out : Buffer.t;
  mutable m_off : int;
  mutable m_ready : bool;  (* response buffered: flush, then close *)
  mutable m_dead : bool;
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let metrics_response srv line =
  let snap = Server.snapshot srv in
  let json () = Json.to_string (Telemetry.to_json snap) ^ "\n" in
  let lower = String.lowercase_ascii (String.trim line) in
  if String.length lower >= 4 && String.sub lower 0 4 = "get " then begin
    let want_json = contains_sub lower "json" in
    let body = if want_json then json () else Telemetry.to_prometheus snap in
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      (if want_json then "application/json"
       else "text/plain; version=0.0.4")
      (String.length body) body
  end
  else if lower = "json" then json ()
  else Telemetry.to_prometheus snap

let mclient_read srv mc chunk =
  let respond () =
    if not mc.m_ready then begin
      Buffer.add_string mc.m_out
        (metrics_response srv (Buffer.contents mc.m_in));
      mc.m_ready <- true
    end
  in
  match Unix.read mc.m_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> mc.m_dead <- true
  | 0 -> if Buffer.length mc.m_in > 0 then respond () else mc.m_dead <- true
  | n ->
    (match Bytes.index_from_opt chunk 0 '\n' with
     | Some i when i < n ->
       Buffer.add_subbytes mc.m_in chunk 0 i;
       respond ()
     | _ -> Buffer.add_subbytes mc.m_in chunk 0 n)

let mclient_flush mc =
  let len = min (Buffer.length mc.m_out - mc.m_off) 65536 in
  if len > 0 then
    match
      Unix.write_substring mc.m_fd (Buffer.contents mc.m_out) mc.m_off len
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> mc.m_dead <- true
    | n -> mc.m_off <- mc.m_off + n

(* Accept many simultaneous connections and multiplex them onto one
   engine with a single-domain select loop: read whatever is ready, drain
   the per-connection queues round-robin (fairness quantum), write
   whatever fits. Request execution is synchronous inside the loop, so
   requests from different clients serialize and each client's replies
   come back in its own request order. The optional metrics listener
   rides the same loop: its one-shot clients are read, answered from
   {!Server.snapshot} and flushed alongside the protocol clients. *)
let serve_socket srv sock ?metrics_sock max_clients =
  let clients : (Unix.file_descr, client) Hashtbl.t =
    Hashtbl.create 16
  in
  let mclients : (Unix.file_descr, mclient) Hashtbl.t = Hashtbl.create 8 in
  let chunk = Bytes.create 65536 in
  (* After shutdown executes, keep flushing pending replies for a bounded
     grace period; a peer that stops reading cannot wedge the exit. *)
  let flush_deadline = ref None in
  let fold f = Hashtbl.fold (fun _ c acc -> f c acc) clients [] in
  let accept_ready () =
    match Unix.accept sock with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | fd, _ ->
      if Hashtbl.length clients >= max_clients then begin
        (* full house: refuse before the greeting so the client sees an
           immediate EOF rather than a wedged stream *)
        Printf.eprintf "rtic: refusing connection (max-clients %d)\n%!"
          max_clients;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        let c =
          { fd;
            conn = Server.connect srv;
            inbuf = Buffer.create 256;
            out = Buffer.create 4096;
            out_off = 0;
            eof = false;
            dead = false }
        in
        Buffer.add_string c.out (Server.hello ^ "\n");
        Hashtbl.replace clients fd c
      end
  in
  let accept_metrics msock =
    match Unix.accept msock with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace mclients fd
        { m_fd = fd;
          m_in = Buffer.create 64;
          m_out = Buffer.create 4096;
          m_off = 0;
          m_ready = false;
          m_dead = false }
  in
  let close_mclient mc =
    Hashtbl.remove mclients mc.m_fd;
    try Unix.close mc.m_fd with Unix.Unix_error _ -> ()
  in
  let mfold f = Hashtbl.fold (fun _ mc acc -> f mc acc) mclients [] in
  let drain_round_robin () =
    let rec go () =
      let progressed =
        List.exists
          (fun x -> x)
          (fold (fun c acc ->
               let replies =
                 if c.dead then []
                 else Server.conn_drain ~limit:drain_quantum c.conn
               in
               List.iter
                 (fun r ->
                   Buffer.add_string c.out r;
                   Buffer.add_char c.out '\n')
                 replies;
               (replies <> []) :: acc))
      in
      if progressed then go ()
    in
    go ()
  in
  let finished () =
    Server.stopped srv
    && (Hashtbl.length clients = 0
        || (match !flush_deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false))
  in
  while not (finished ()) do
    let stopped = Server.stopped srv in
    if stopped && !flush_deadline = None then
      flush_deadline := Some (Unix.gettimeofday () +. 5.0);
    let rds =
      (if stopped then [] else [ sock ])
      @ (match metrics_sock with
         | Some msock when not stopped -> [ msock ]
         | _ -> [])
      @ fold (fun c acc ->
            if (not stopped) && (not c.eof) && (not c.dead)
               && out_pending c < out_hiwater
            then c.fd :: acc
            else acc)
      @ mfold (fun mc acc ->
            if (not mc.m_ready) && not mc.m_dead then mc.m_fd :: acc
            else acc)
    in
    let wrs =
      fold (fun c acc -> if out_pending c > 0 && not c.dead then c.fd :: acc else acc)
      @ mfold (fun mc acc ->
            if Buffer.length mc.m_out - mc.m_off > 0 && not mc.m_dead then
              mc.m_fd :: acc
            else acc)
    in
    (match Unix.select rds wrs [] 0.5 with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | rs, ws, _ ->
       List.iter
         (fun fd ->
           if fd = sock then accept_ready ()
           else if metrics_sock = Some fd then accept_metrics fd
           else
             match Hashtbl.find_opt clients fd with
             | Some c -> read_client c chunk
             | None ->
               (match Hashtbl.find_opt mclients fd with
                | Some mc -> mclient_read srv mc chunk
                | None -> ()))
         rs;
       drain_round_robin ();
       List.iter
         (fun fd ->
           match Hashtbl.find_opt clients fd with
           | Some c -> flush_client c
           | None ->
             (match Hashtbl.find_opt mclients fd with
              | Some mc -> mclient_flush mc
              | None -> ()))
         ws;
       (* reap: failed connections at once; EOF'd (or post-shutdown) ones
          when their replies are flushed; one-shot metrics clients as soon
          as their single response went out *)
       List.iter
         (fun c ->
           if c.dead then close_client clients c
           else if (c.eof || Server.stopped srv)
                   && out_pending c = 0
                   && Server.conn_pending c.conn = 0
           then close_client clients c)
         (fold List.cons);
       List.iter
         (fun mc ->
           if mc.m_dead
              || (mc.m_ready && mc.m_off = Buffer.length mc.m_out)
           then close_mclient mc)
         (mfold List.cons))
  done;
  Hashtbl.iter (fun _ c -> (try Unix.close c.fd with Unix.Unix_error _ -> ())) clients;
  Hashtbl.iter (fun _ mc -> (try Unix.close mc.m_fd with Unix.Unix_error _ -> ())) mclients

(* A socket path that already exists either belongs to a live server
   (refuse: two servers must not race for one path) or is a stale
   leftover from a crash (unlink and proceed: a SIGKILL'd server gets no
   chance to clean up). A connect probe tells the two apart. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    (match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> ()
     | _ ->
       usage_error
         (path
          ^ " already exists and is not a socket; remove it or pick \
             another socket path"));
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> false)
    in
    if live then
      usage_error
        (path ^ " already has a live server; pick another socket path");
    Printf.eprintf "rtic: removing stale socket %s\n%!" path;
    try Sys.remove path with Sys_error _ -> ()
  end

let run_serve socket metrics_socket jobs max_pending max_clients trace_out =
  if jobs < 1 then usage_error "--jobs must be at least 1";
  if max_pending < 1 then usage_error "--max-pending must be at least 1";
  if max_clients < 1 then usage_error "--max-clients must be at least 1";
  (match trace_out with
   | Some "-" ->
     usage_error
       "--trace-out - is not supported by serve (stdout carries replies); \
        give a file"
   | _ -> ());
  (match (metrics_socket, socket) with
   | Some _, None ->
     usage_error "--metrics-socket requires --socket (the stdin/stdout \
                  transport has no select loop to serve it from)"
   | Some m, Some s when m = s ->
     usage_error "--metrics-socket must differ from --socket"
   | _ -> ());
  (match socket with
   | Some path -> claim_socket_path path
   | None -> ());
  (match metrics_socket with
   | Some path -> claim_socket_path path
   | None -> ());
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> raise Terminated)))
    [ Sys.sigterm; Sys.sigint ];
  let trace_oc = Option.map open_out trace_out in
  let tracer =
    Option.map
      (fun oc ->
        Tracer.create
          ~emit:(fun line ->
            output_string oc line;
            output_char oc '\n')
          ())
      trace_oc
  in
  let pool = if jobs > 1 then Some (Pool.create jobs) else None in
  let srv =
    Server.create ?tracer ?pool ~config:{ Server.max_pending; telemetry = true } ()
  in
  (* Every exit path — clean shutdown, SIGTERM/SIGINT, a connection-level
     exception, even an engine bug — runs the same cleanup: sockets
     closed, the socket file unlinked, worker domains joined, the span
     trace flushed (a truncated stream would be unreadable). *)
  Fun.protect
    ~finally:(fun () ->
      Option.iter Pool.shutdown pool;
      match trace_oc with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      let body () =
        match socket with
        | None ->
          pump_stream srv
            ~read:(fun b -> Unix.read Unix.stdin b 0 (Bytes.length b))
            ~write:(write_all Unix.stdout)
        | Some path ->
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          (* unlink only paths this process actually bound *)
          let listener p =
            let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match Unix.bind sock (Unix.ADDR_UNIX p) with
            | () -> sock
            | exception e ->
              (try Unix.close sock with Unix.Unix_error _ -> ());
              raise e
          in
          let sock = listener path in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.close sock with Unix.Unix_error _ -> ());
              try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              Unix.listen sock 64;
              Unix.set_nonblock sock;
              match metrics_socket with
              | None ->
                Printf.eprintf "rtic: serving on %s\n%!" path;
                serve_socket srv sock max_clients
              | Some mpath ->
                let msock = listener mpath in
                Fun.protect
                  ~finally:(fun () ->
                    (try Unix.close msock with Unix.Unix_error _ -> ());
                    try Sys.remove mpath with Sys_error _ -> ())
                  (fun () ->
                    Unix.listen msock 64;
                    Unix.set_nonblock msock;
                    Printf.eprintf "rtic: serving on %s\n%!" path;
                    Printf.eprintf "rtic: metrics on %s\n%!" mpath;
                    serve_socket srv sock ~metrics_sock:msock max_clients))
      in
      try body ()
      with Terminated ->
        Printf.eprintf "rtic: terminated, shutting down\n%!");
  0

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* One-shot fetch from a serve --metrics-socket: send one request line,
   read to EOF (the server answers once and closes). *)
let fetch_metrics path mode =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
      | () ->
        write_all fd (mode ^ "\n");
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec go () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        in
        go ();
        Ok (Buffer.contents buf))

let render_top (snap : Telemetry.snapshot) =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let rate w rates =
    match List.assoc_opt w rates with Some r -> r | None -> 0.0
  in
  line "rtic top - sessions %d  queue %d/%d  transactions %d%s"
    snap.Telemetry.session_count snap.Telemetry.queued
    snap.Telemetry.max_pending snap.Telemetry.transactions
    (if snap.Telemetry.stopped then "  [shutting down]" else "");
  line "server txn/s: 1s %.1f  10s %.1f  60s %.1f"
    (rate 1 snap.Telemetry.rates)
    (rate 10 snap.Telemetry.rates)
    (rate 60 snap.Telemetry.rates);
  line "";
  line "%-20s %-11s %9s %6s %8s %9s %8s %9s" "SESSION" "HEALTH" "TXNS"
    "VIOL" "TXN/S" "P99(us)" "AUX" "WAL-B";
  List.iter
    (fun (s : Telemetry.session) ->
      let gauge k =
        match List.assoc_opt k s.Telemetry.gauges with
        | Some v -> v
        | None -> 0
      in
      let p99 =
        match s.Telemetry.latency with
        | Some l -> Printf.sprintf "%.1f" (l.Metrics.p99_ns /. 1e3)
        | None -> "-"
      in
      line "%-20s %-11s %9d %6d %8.1f %9s %8d %9d" s.Telemetry.name
        s.Telemetry.health s.Telemetry.transactions s.Telemetry.violations
        (rate 1 s.Telemetry.rates)
        p99
        (gauge "aux_size")
        (gauge "wal_bytes_since_checkpoint"))
    snap.Telemetry.sessions;
  Buffer.contents b

let run_top socket once as_json as_prom interval =
  if as_json && as_prom then
    usage_error "--json and --prom are mutually exclusive";
  if interval <= 0.0 then usage_error "--interval must be positive";
  let mode = if as_prom then "prom" else "json" in
  let show () =
    let body = or_die (fetch_metrics socket mode) in
    if as_json || as_prom then print_string body
    else begin
      let snap = or_die (Telemetry.of_string body) in
      if not once then
        (* clear the screen and home the cursor between refreshes *)
        print_string "\027[2J\027[H";
      print_string (render_top snap)
    end;
    flush stdout
  in
  if once then show ()
  else begin
    Sys.catch_break true;
    (try
       while true do
         show ();
         Unix.sleepf interval
       done
     with Sys.Break -> ());
    ()
  end;
  0

(* ------------------------------------------------------------------ *)
(* rules                                                               *)
(* ------------------------------------------------------------------ *)

let run_rules spec_file =
  let spec = or_die (load_spec spec_file) in
  List.iter
    (fun (d : Formula.def) ->
      Format.printf "constraint %s:@." d.name;
      match Compile.compile spec.Parser.catalog d with
      | Error m -> Format.printf "  cannot compile: %s@." m
      | Ok prog ->
        List.iter
          (fun s -> Format.printf "  table %a@." Schema.pp s)
          (Schema.Catalog.schemas (Compile.aux_catalog prog));
        List.iter
          (fun (r : Compile.rule_desc) ->
            Format.printf "  rule %s (for %s):@.    %s@." r.rule_name
              r.on_formula r.description)
          (Compile.rules prog))
    spec.Parser.defs;
  0

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let run_explain spec_file trace_file name limit =
  let spec = or_die (load_spec spec_file) in
  let tr = or_die (load_trace trace_file) in
  let d =
    match
      List.find_opt (fun (d : Formula.def) -> d.name = name) spec.Parser.defs
    with
    | Some d -> d
    | None -> usage_error (Printf.sprintf "no constraint named %s" name)
  in
  let h = or_die (Trace.materialize tr) in
  let viols = or_die (Naive.violations h d) in
  if viols = [] then begin
    Printf.printf "constraint %s holds at every position\n" name;
    0
  end
  else begin
    List.iter
      (fun i ->
        Format.printf "@.violated at position %d (time %d)@." i
          (History.time h i);
        (* For the common shape  not (exists ...)  show the witnesses of the
           negated body, with the quantifier stripped so the variable
           bindings are visible. *)
        match Rewrite.normalize d.body with
        | Formula.Not (Formula.Exists (_, g)) | Formula.Not g ->
          (match Naive.eval h i g with
           | Ok vr ->
             let witnesses = Valrel.bindings vr in
             let shown = List.filteri (fun k _ -> k < limit) witnesses in
             List.iter
               (fun bindings ->
                 let parts =
                   List.map
                     (fun (v, value) ->
                       Printf.sprintf "%s = %s" v
                         (Rtic_relational.Value.to_string value))
                     bindings
                 in
                 Format.printf "  witness: %s@."
                   (if parts = [] then "(propositional)"
                    else String.concat ", " parts))
               shown;
             if List.length witnesses > limit then
               Format.printf "  ... and %d more@."
                 (List.length witnesses - limit)
           | Error m -> Format.printf "  (no witnesses: %s)@." m)
        | _ -> Format.printf "  (constraint is not of the form 'not (...)')@.")
      viols;
    1
  end

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

(* Evaluate an ad-hoc (possibly open) formula at one position of a trace
   and print the verdict or the witnesses. Single-state (non-temporal,
   non-transition) formulas run through the Codd compiler on the planned
   relational algebra — the indexed path; anything the compiler rejects
   falls back to the naive evaluator, which agrees with it by the codd
   agreement property. *)
let run_query spec_file trace_file formula_src at limit no_plan =
  let spec = or_die (load_spec spec_file) in
  let tr = or_die (load_trace trace_file) in
  let f = or_die (Parser.formula_of_string formula_src) in
  (match Rtic_mtl.Typecheck.check spec.Parser.catalog f with
   | Ok _ -> ()
   | Error m -> usage_error ("ill-typed query: " ^ m));
  let h = or_die (Trace.materialize tr) in
  let i =
    match at with
    | Some i when i >= 0 && i < History.length h -> i
    | Some i ->
      usage_error
        (Printf.sprintf "position %d out of range (0..%d)" i (History.last h))
    | None -> History.last h
  in
  let vr =
    match Codd.eval_via_algebra ~plan:(not no_plan) (History.db h i) f with
    | Ok vr -> vr
    | Error _ ->
      (* not single-state (or a runtime error the naive evaluator will
         reproduce verbatim): evaluate over the history *)
      or_die (Naive.eval h i f)
  in
  Format.printf "at position %d (time %d): " i (History.time h i);
  if Array.length (Valrel.cols vr) = 0 then begin
    Format.printf "%b@." (Valrel.holds vr);
    if Valrel.holds vr then 0 else 1
  end
  else begin
    Format.printf "%d witness(es)@." (Valrel.cardinal vr);
    List.iteri
      (fun k bindings ->
        if k < limit then
          Format.printf "  %s@."
            (String.concat ", "
               (List.map
                  (fun (v, value) ->
                    Printf.sprintf "%s = %s" v
                      (Rtic_relational.Value.to_string value))
                  bindings)))
      (Valrel.bindings vr);
    if Valrel.cardinal vr > limit then
      Format.printf "  ... and %d more@." (Valrel.cardinal vr - limit);
    if Valrel.holds vr then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let run_gen scenario steps seed rate out spec_out =
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  let trace_text, spec_text =
    if scenario = "generic" then
      let tr =
        Gen.random_trace ~seed { Gen.default_params with steps }
      in
      (Trace.to_string tr, "")
    else
      match
        List.find_opt (fun (s : Scenarios.t) -> s.name = scenario) Scenarios.all
      with
      | None ->
        usage_error
          (Printf.sprintf
             "unknown scenario %s (expected banking, library, monitoring or \
              generic)"
             scenario)
      | Some sc ->
        let tr = sc.generate ~seed ~steps ~violation_rate:rate in
        let spec =
          String.concat "\n"
            (List.map Rtic_relational.Textio.schema_to_string
               (Schema.Catalog.schemas sc.catalog)
             @ List.map Pretty.def_to_string sc.constraints)
          ^ "\n"
        in
        (Trace.to_string tr, spec)
  in
  (match out with
   | Some path -> write path trace_text
   | None -> print_string trace_text);
  (match spec_out with
   | Some path when spec_text <> "" -> write path spec_text
   | Some _ ->
     Printf.eprintf "rtic: the generic scenario has no constraint spec\n"
   | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* command line                                                        *)
(* ------------------------------------------------------------------ *)

let spec_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC"
         ~doc:"Specification file (schemas and constraints).")

let trace_pos n =
  Arg.(required & pos n (some file) None & info [] ~docv:"TRACE"
         ~doc:"Trace file (timestamped transactions).")

let parse_cmd =
  let doc = "validate a specification file and report monitorability" in
  Cmd.v (Cmd.info "parse" ~doc) Term.(const run_parse $ spec_arg)

let engine_arg =
  let engines =
    Arg.enum
      [ ("incremental", E_incremental); ("shared", E_shared);
        ("naive", E_naive); ("active", E_active); ("future", E_future) ]
  in
  Arg.(value & opt engines E_incremental & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Checker to use: $(b,incremental) (bounded history encoding), \
               $(b,shared) (one kernel for all constraints, subformulas \
               shared), $(b,naive) (full history baseline), $(b,active) \
               (compiled rules), or $(b,future) (verdict delay; required \
               for bounded-future constraints).")

let no_prune_arg =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable the bounded-history-encoding pruning (ablation; \
               verdicts are unchanged, auxiliary space grows).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Check constraints on $(docv) worker domains: the constraint \
               set is sharded across a fixed pool and every transaction \
               fans out to all shards, with verdicts merged back in \
               registration order — reports, statistics and exit codes are \
               identical to a sequential run. $(b,1) (the default) is the \
               sequential path. Engines incremental and shared.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the summary line.")

let load_state_arg =
  Arg.(value & opt (some file) None & info [ "load-state" ] ~docv:"FILE"
         ~doc:"Resume from a monitor checkpoint written by --save-state; the \
               trace should then hold only the transactions that were not \
               yet processed. Incremental engine only.")

let save_state_arg =
  Arg.(value & opt (some string) None & info [ "save-state" ] ~docv:"FILE"
         ~doc:"After processing the trace, write the monitor state (the \
               bounded history encoding) here. Incremental engine only.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print run statistics (transactions, violations per \
               constraint, peak auxiliary space) and the kernel metrics \
               (formula-cache hits, step-latency percentiles, per-node \
               auxiliary gauges). Incremental engine only.")

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the run statistics as a JSON document (schema \
               rtic-stats/1, see FORMATS.md) instead of any human-readable \
               output; implies --stats. The document is the only stdout \
               output; the exit code is unchanged.")

let trace_flag_arg =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Log one line per transaction (time, violation count, \
               auxiliary space) to stderr while checking.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Stream a structured span trace (JSONL, schema rtic-trace/1, \
               see FORMATS.md) of the run to $(docv); $(b,-) streams to \
               stdout (human output then moves to stderr, so the stream \
               pipes straight into $(b,rtic profile)). Engines \
               incremental, shared and future.")

let state_dir_arg =
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Run as a crash-safe service: append every accepted \
               transaction to a write-ahead log in $(docv) and checkpoint \
               the monitor state there periodically. If $(docv) already \
               holds state, recover from it first (checkpoint + WAL \
               replay) and skip trace transactions that were already \
               processed. Incremental engine, past-only constraints.")

let auto_checkpoint_arg =
  Arg.(value & opt int 64 & info [ "auto-checkpoint" ] ~docv:"N"
         ~doc:"With --state-dir: checkpoint every $(docv) accepted \
               transactions (0 disables; default 64).")

let on_error_arg =
  Arg.(value & opt string "halt" & info [ "on-error" ] ~docv:"POLICY"
         ~doc:"With --state-dir: what to do with a transaction the monitor \
               cannot simply accept — $(b,halt) (stop, exit 2), $(b,skip) \
               (drop silently), $(b,reject) (drop and report on stderr) or \
               $(b,repair) (self-heal: a constraint-violating transaction \
               commits together with a bounded founded repair, journaled \
               as one WAL record; past-anchored violations are reported \
               unrepairable; a run that only succeeded via repairs exits \
               3).")

let aux_budget_arg =
  Arg.(value & opt (some int) None & info [ "aux-budget" ] ~docv:"N"
         ~doc:"With --state-dir: quarantine any constraint whose auxiliary \
               state exceeds $(docv) entries; its verdicts become \
               inconclusive while the others keep full monitoring.")

let group_commit_arg =
  Arg.(value & opt int 1 & info [ "group-commit" ] ~docv:"N"
         ~doc:"With --state-dir: group commit — make accepted transactions \
               durable in batches of up to $(docv) WAL records per \
               write+sync, releasing their verdicts only once the batch is \
               on disk. 1 (the default) syncs every transaction; larger \
               values trade a bounded loss window (at most $(docv)-1 \
               unacknowledged transactions on a crash) for throughput.")

let wal_format_arg =
  Arg.(value & opt int 1 & info [ "wal-format" ] ~docv:"V"
         ~doc:"With --state-dir: WAL format version written when creating \
               a fresh state directory — 1 (text records, the default) or \
               2 (binary length-prefixed records, see FORMATS.md). An \
               existing directory keeps its format; $(b,rtic wal dump) \
               renders either as text.")

let check_cmd =
  let doc = "monitor a trace and report constraint violations" in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run_check $ spec_arg $ trace_pos 1 $ engine_arg $ no_prune_arg
          $ jobs_arg $ quiet_arg $ load_state_arg $ save_state_arg $ stats_arg
          $ json_arg $ trace_flag_arg $ trace_out_arg $ state_dir_arg
          $ auto_checkpoint_arg $ on_error_arg $ aux_budget_arg
          $ group_commit_arg $ wal_format_arg)

let recover_cmd =
  let doc = "inspect (and optionally salvage) a crash-safe state directory" in
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR"
           ~doc:"State directory written by check --state-dir.")
  in
  let repair_arg =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"After recovering, write a fresh checkpoint and compact \
                 the WAL (clears torn tails and prunes corrupt snapshots' \
                 influence). Without it the directory is not modified. \
                 This salvages $(b,storage) only — it never changes \
                 database content; to heal constraint $(b,violations) in \
                 the data, see $(b,rtic repair).")
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(const run_recover $ spec_arg $ dir_arg $ repair_arg)

let repair_cmd =
  let doc =
    "search for (and optionally apply) constraint repairs of a recovered \
     state"
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Recover the state directory, then run a bounded search for a \
         founded minimal set of inserts/deletes that restores every \
         violated constraint at the next commit time. Without $(b,--apply) \
         the repair is only proposed; with it, the repair commits through \
         the supervisor and is journaled in the write-ahead log, so any \
         later recovery replays it. Violations whose verdict is anchored \
         entirely in past states are reported $(b,unrepairable) with the \
         offending subformula; an exhausted search budget is reported \
         $(b,inconclusive), never unrepairable.";
      `P
        "Distinct from $(b,rtic recover --repair), which salvages the \
         storage layer (fresh checkpoint, WAL compaction) and never \
         touches database content.";
      `S Manpage.s_exit_status;
      `P "0 — every constraint already holds; nothing to repair.";
      `P "1 — violations stand: unrepairable, or the search was \
          inconclusive.";
      `P "2 — usage or internal error.";
      `P "3 — a repair was found (and with --apply, committed)." ]
  in
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR"
           ~doc:"State directory written by check --state-dir.")
  in
  let apply_arg =
    Arg.(value & flag & info [ "apply" ]
           ~doc:"Commit the repair through the supervisor (WAL-journaled) \
                 instead of only proposing it.")
  in
  let at_time_arg =
    Arg.(value & opt (some int) None & info [ "at-time" ] ~docv:"T"
           ~doc:"Commit time to repair at (must be after the last accepted \
                 transaction; default: last + 1).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the repair report as JSON (schema rtic-repair/1, see \
                 FORMATS.md §8) instead of human-readable output.")
  in
  let max_steps_arg =
    Arg.(value & opt int Repair.default_budget.Repair.max_steps
         & info [ "max-steps" ] ~docv:"N"
             ~doc:"Oracle budget: total checker probes the search may \
                   spend before reporting inconclusive.")
  in
  let max_candidates_arg =
    Arg.(value & opt int Repair.default_budget.Repair.max_candidates
         & info [ "max-candidates" ] ~docv:"N"
             ~doc:"Candidate actions generated per search state.")
  in
  let max_depth_arg =
    Arg.(value & opt int Repair.default_budget.Repair.max_depth
         & info [ "max-depth" ] ~docv:"N"
             ~doc:"Largest repair cardinality considered.")
  in
  Cmd.v (Cmd.info "repair" ~doc ~man)
    Term.(const run_repair $ spec_arg $ dir_arg $ apply_arg $ at_time_arg
          $ json_arg $ max_steps_arg $ max_candidates_arg $ max_depth_arg)

(* ------------------------------------------------------------------ *)
(* lint-json                                                           *)
(* ------------------------------------------------------------------ *)

let run_lint_json file =
  let text =
    match file with
    | Some path -> or_die (read_file path)
    | None -> In_channel.input_all stdin
  in
  match Json.of_string text with
  | Ok _ ->
    print_endline "valid JSON";
    0
  | Error m ->
    Printf.eprintf "rtic: invalid JSON: %s\n" m;
    1

let lint_json_cmd =
  let doc = "validate that a file (or stdin) is a single well-formed JSON \
             document" in
  let file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"File to validate (default: read stdin).")
  in
  Cmd.v (Cmd.info "lint-json" ~doc) Term.(const run_lint_json $ file_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

(* Aggregate an rtic-trace/1 stream (check --trace-out) into a
   per-span-identity time attribution: self time, total time, call count. *)
let run_profile file want_json want_collapsed =
  if want_json && want_collapsed then
    usage_error "--json and --collapsed are mutually exclusive";
  let text =
    match file with
    | Some path -> or_die (read_file path)
    | None -> In_channel.input_all stdin
  in
  match Profile.of_string text with
  | Error m ->
    Printf.eprintf "rtic: bad trace: %s\n" m;
    exit 2
  | Ok p ->
    if want_collapsed then print_string (Profile.to_collapsed p)
    else if want_json then
      print_endline (Json.to_string ~indent:true (Profile.to_json p))
    else Format.printf "%a@." Profile.pp p;
    0

let profile_cmd =
  let doc = "aggregate a span trace into a per-constraint time profile" in
  let file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"rtic-trace/1 stream written by check --trace-out \
                 (default: read stdin).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the profile as a JSON document (schema \
                 rtic-profile/1, see FORMATS.md).")
  in
  let collapsed_arg =
    Arg.(value & flag & info [ "collapsed" ]
           ~doc:"Emit collapsed-stack lines (one $(b,frame;frame;frame \
                 self_ns) per stack) for flamegraph tools.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run_profile $ file_arg $ json_arg $ collapsed_arg)

let rules_cmd =
  let doc = "show the active-DBMS rules a constraint compiles to" in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run_rules $ spec_arg)

let explain_cmd =
  let doc = "show the violating positions of one constraint, with witnesses" in
  let name_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"CONSTRAINT"
           ~doc:"Constraint name.")
  in
  let limit_arg =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Witnesses to print.")
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run_explain $ spec_arg $ trace_pos 1 $ name_arg $ limit_arg)

let query_cmd =
  let doc = "evaluate an ad-hoc formula at a position of a trace" in
  let formula_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"FORMULA"
           ~doc:"The formula, in constraint concrete syntax (may be open; \
                 witnesses are printed).")
  in
  let at_arg =
    Arg.(value & opt (some int) None & info [ "at" ] ~docv:"POS"
           ~doc:"0-based position to evaluate at (default: the last state).")
  in
  let limit_arg =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Witnesses to print.")
  in
  let no_plan_arg =
    Arg.(value & flag & info [ "no-plan" ]
           ~doc:"Evaluate single-state queries on the unplanned relational \
                 algebra (no selection pushdown or join reordering). \
                 Escape hatch; results are identical either way.")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run_query $ spec_arg $ trace_pos 1 $ formula_arg $ at_arg
          $ limit_arg $ no_plan_arg)

let serve_cmd =
  let doc = "run the monitor as a long-lived service (rtic-serve/1)" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Accepts the line-oriented $(b,rtic-serve/1) request protocol (see \
         FORMATS.md §7) over stdin/stdout, or over a Unix-domain socket \
         with $(b,--socket). Requests open named sessions (each a \
         crash-safe supervised monitor, as $(b,check --state-dir)), feed \
         them transactions, query statistics, checkpoint, close, and shut \
         the server down; every request gets one single-line JSON reply. \
         $(b,tools/drive.exe) is the matching load client." ]
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of \
                 stdin/stdout, serving many simultaneous connections; \
                 sessions are shared across connections and persist when a \
                 client disconnects. A stale socket file left by a crashed \
                 server is detected (connect probe) and replaced; a path \
                 held by a live server is refused. The file is removed on \
                 every exit — clean shutdown, SIGTERM/SIGINT, or a crash \
                 of the serving loop.")
  in
  let metrics_socket_arg =
    Arg.(value & opt (some string) None & info [ "metrics-socket" ]
           ~docv:"PATH"
           ~doc:"With --socket: also listen on a read-only telemetry \
                 socket at $(docv), served from the same loop. Each \
                 connection is one-shot: send $(b,json) for an \
                 $(b,rtic-metrics/1) snapshot, anything else (including \
                 an HTTP GET from a Prometheus scraper) for Prometheus \
                 text exposition. Scrapes bypass the request queue and \
                 the admission budget. $(b,rtic top) is the matching \
                 dashboard.")
  in
  let max_pending_arg =
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Admission control: at most $(docv) parsed requests may \
                 await execution, across all connections; a pipelined \
                 burst beyond that gets explicit $(b,overloaded) error \
                 replies (never silent drops).")
  in
  let max_clients_arg =
    Arg.(value & opt int 64 & info [ "max-clients" ] ~docv:"N"
           ~doc:"With --socket: accept at most $(docv) simultaneous \
                 connections; further connects are closed immediately \
                 (the client sees EOF before the greeting).")
  in
  let serve_trace_out_arg =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Stream a structured span trace (JSONL, schema \
                 rtic-trace/1) of every executed request to $(docv).")
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run_serve $ socket_arg $ metrics_socket_arg $ jobs_arg
          $ max_pending_arg $ max_clients_arg $ serve_trace_out_arg)

let top_cmd =
  let doc = "live dashboard over a running rtic serve --metrics-socket" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Polls the read-only telemetry socket of a running $(b,rtic serve \
         --socket ... --metrics-socket PATH) server and renders a \
         one-screen dashboard: per-session throughput, p99 check latency, \
         auxiliary-space and WAL gauges, queue depth and health. With \
         $(b,--once --json) it prints a single raw $(b,rtic-metrics/1) \
         snapshot and exits — the scripting interface. Scrapes bypass \
         the request queue, so the dashboard keeps refreshing even when \
         the server is saturated." ]
  in
  let socket_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
           ~doc:"The --metrics-socket path of the server to watch.")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Take one snapshot, print it, exit.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the raw rtic-metrics/1 JSON document instead of \
                 the dashboard.")
  in
  let prom_arg =
    Arg.(value & flag & info [ "prom" ]
           ~doc:"Print the Prometheus text exposition instead of the \
                 dashboard.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period without --once.")
  in
  Cmd.v (Cmd.info "top" ~doc ~man)
    Term.(const run_top $ socket_arg $ once_arg $ json_arg $ prom_arg
          $ interval_arg)

let gen_cmd =
  let doc = "generate a synthetic trace (and spec) for a scenario" in
  let scenario_arg =
    Arg.(value & opt string "generic" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"banking, library, monitoring or generic.")
  in
  let steps_arg =
    Arg.(value & opt int 100 & info [ "steps" ] ~doc:"Transactions to generate.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let rate_arg =
    Arg.(value & opt float 0.0 & info [ "violation-rate" ]
           ~doc:"Probability of injecting a violation per step.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ]
           ~docv:"FILE" ~doc:"Write the trace here (default stdout).")
  in
  let spec_out_arg =
    Arg.(value & opt (some string) None & info [ "spec-out" ]
           ~docv:"FILE" ~doc:"Also write the scenario's spec file here.")
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run_gen $ scenario_arg $ steps_arg $ seed_arg $ rate_arg
          $ out_arg $ spec_out_arg)

let wal_cmd =
  let doc = "inspect write-ahead log files" in
  let dump_cmd =
    let doc =
      "render a WAL file (rtic-wal/1 or rtic-wal/2) as rtic-wal/1 text"
    in
    let file_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
             ~doc:"The wal.log to dump (from a --state-dir directory).")
    in
    Cmd.v (Cmd.info "dump" ~doc) Term.(const run_wal_dump $ file_arg)
  in
  Cmd.group (Cmd.info "wal" ~doc) [ dump_cmd ]

let main_cmd =
  let doc = "real-time integrity constraints over timed database histories" in
  Cmd.group (Cmd.info "rtic" ~version:"1.0.0" ~doc)
    [ parse_cmd; check_cmd; serve_cmd; top_cmd; recover_cmd; repair_cmd;
      profile_cmd; rules_cmd; explain_cmd; query_cmd; gen_cmd;
      lint_json_cmd; wal_cmd ]

let () = exit (Cmd.eval' main_cmd)
