(* Shared workload builders for the experiment harness. *)

module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Database = Rtic_relational.Database
module History = Rtic_temporal.History
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser
module Incremental = Rtic_core.Incremental
module Compile = Rtic_active.Compile
module Naive = Rtic_eval.Naive
module Gen = Rtic_workload.Gen

let or_die what = function
  | Ok v -> v
  | Error m ->
    Printf.eprintf "bench: %s: %s\n" what m;
    exit 1

let parse_def src = or_die src (Parser.def_of_string src)
let parse_formula src = or_die src (Parser.formula_of_string src)

(* Event stream over the generic catalog: at each step one fresh p-event
   (value cycling over [domain]) and one fresh q-event; previous events are
   removed. Snapshot i therefore holds exactly one p-tuple and one q-tuple,
   and witnesses age out — the workload the space-bound experiments use. *)
let event_snapshots ?(domain = 64) ?(gap = 2) n =
  let db0 = Database.create Gen.generic_catalog in
  let value i = Value.Int (i mod domain) in
  let rec go i db acc =
    if i > n then List.rev acc
    else
      let db =
        if i = 1 then db
        else
          db
          |> (fun db -> or_die "del p" (Database.delete db "p" [| value (i - 1) |]))
          |> fun db -> or_die "del q" (Database.delete db "q" [| value (i - 2) |])
      in
      let db = or_die "ins p" (Database.insert db "p" [| value i |]) in
      let db = or_die "ins q" (Database.insert db "q" [| value (i - 1) |]) in
      go (i + 1) db ((i * gap, db) :: acc)
  in
  go 1 db0 []

let history_of_snapshots snaps =
  or_die "history" (Rtic_temporal.History.of_snapshots snaps)

(* Run a full snapshot list through the incremental checker; returns the
   final state. *)
let run_incremental ?metrics ?tracer ?config d snaps =
  List.fold_left
    (fun st (time, db) -> fst (or_die "step" (Incremental.step st ~time db)))
    (or_die "create"
       (Incremental.create ?metrics ?tracer ?config Gen.generic_catalog d))
    snaps

(* Wall-clock helper (CPU time; workloads are CPU-bound and single-threaded). *)
let time_it f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let ms t = t *. 1000.
