(* The experiment harness: regenerates every claim-validation table
   (E1–E9 and the E-R robustness table) described in DESIGN.md /
   EXPERIMENTS.md, plus Bechamel micro-benchmarks.

     dune exec bench/main.exe               run everything (default sizes)
     dune exec bench/main.exe -- e1 e4      run selected experiments
     dune exec bench/main.exe -- --quick    smaller sweeps  *)

module Value = Rtic_relational.Value
module Database = Rtic_relational.Database
module History = Rtic_temporal.History
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Interval = Rtic_temporal.Interval
module Incremental = Rtic_core.Incremental
module Monitor = Rtic_core.Monitor
module Metrics = Rtic_core.Metrics
module Json = Rtic_core.Json
module Compile = Rtic_active.Compile
module Naive = Rtic_eval.Naive
module Gen = Rtic_workload.Gen
module Scenarios = Rtic_workload.Scenarios
open Workloads

let quick = ref false

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

let row fmt = Printf.printf fmt

(* Machine-readable companions to the printed tables: each experiment that
   feeds a plot also drops a BENCH_<NAME>.json artifact (schema
   rtic-bench/1; see EXPERIMENTS.md) into the working directory. *)
let write_artifact ~experiment series =
  let doc =
    Json.Obj
      [ ("schema", Json.Str "rtic-bench/1");
        ("experiment", Json.Str experiment);
        ("quick", Json.Bool !quick);
        ("series", Json.List series) ]
  in
  let path = Printf.sprintf "BENCH_%s.json" (String.uppercase_ascii experiment) in
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ------------------------------------------------------------------ *)
(* E1 — space vs history length                                        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1: auxiliary space vs history length n"
    "Claim: with a bounded window the bounded-history-encoding space is\n\
     independent of n, while the naive checker stores the whole history\n\
     (space grows linearly). The unpruned ablation grows linearly too.";
  let d = parse_def "constraint c: forall x. q(x) -> once[0,50] p(x) ;" in
  let sweep = if !quick then [ 250; 500; 1000 ] else [ 250; 500; 1000; 2000; 4000 ] in
  row "%8s %16s %16s %16s\n" "n" "incremental" "no-pruning" "naive(tuples)";
  let series =
    List.map
      (fun n ->
        let snaps = event_snapshots n in
        let st = run_incremental d snaps in
        let st_np =
          run_incremental ~config:{ Incremental.prune = false } d snaps
        in
        let h = history_of_snapshots snaps in
        row "%8d %16d %16d %16d\n" n (Incremental.space st)
          (Incremental.space st_np)
          (History.stored_tuples h);
        Json.Obj
          [ ("n", Json.Int n);
            ("incremental_space", Json.Int (Incremental.space st));
            ("noprune_space", Json.Int (Incremental.space st_np));
            ("naive_tuples", Json.Int (History.stored_tuples h)) ])
      sweep
  in
  write_artifact ~experiment:"e1" series

(* ------------------------------------------------------------------ *)
(* E2 — per-transition check time vs history length                    *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2: per-transition check time vs history length n"
    "Claim: the incremental checker's per-transaction cost does not grow\n\
     with n; the naive checker re-reads the history, so its per-check cost\n\
     grows linearly. (Unbounded once: the naive scan cannot stop early;\n\
     the incremental checker min-compresses to one timestamp per value.)";
  let d = parse_def "constraint c: forall x. q(x) -> once p(x) ;" in
  let sweep = if !quick then [ 250; 500; 1000 ] else [ 250; 500; 1000; 2000 ] in
  let reps = 50 in
  row "%8s %22s %22s\n" "n" "incremental (us/txn)" "naive (us/check)";
  let series =
    List.map
      (fun n ->
        let snaps = event_snapshots n in
        let st = run_incremental d snaps in
        let last_t = fst (List.nth snaps (n - 1)) in
        let db = snd (List.nth snaps (n - 1)) in
        let (), t_inc =
          time_it (fun () ->
              let _ =
                List.fold_left
                  (fun st k ->
                    fst (or_die "step" (Incremental.step st ~time:(last_t + k) db)))
                  st
                  (List.init reps (fun k -> k + 1))
              in
              ())
        in
        let h = history_of_snapshots snaps in
        let (), t_naive =
          time_it (fun () ->
              for _ = 1 to reps do
                ignore (or_die "naive" (Naive.holds_at h (n - 1) d.Formula.body))
              done)
        in
        let inc_us = 1e6 *. t_inc /. float_of_int reps in
        let naive_us = 1e6 *. t_naive /. float_of_int reps in
        row "%8d %22.1f %22.1f\n" n inc_us naive_us;
        Json.Obj
          [ ("n", Json.Int n);
            ("incremental_us_per_txn", Json.Float inc_us);
            ("naive_us_per_check", Json.Float naive_us) ])
      sweep
  in
  write_artifact ~experiment:"e2" series

(* ------------------------------------------------------------------ *)
(* E3 — total trace-processing time                                    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3: total time to process a trace of n transactions"
    "Claim: incremental is linear in n; naive is quadratic (every state\n\
     re-reads its past), so the gap widens with n. (Unbounded once: the
     naive scan walks the whole prefix at every position.)";
  let d = parse_def "constraint c: forall x. q(x) -> once p(x) ;" in
  let sweep = if !quick then [ 250; 500 ] else [ 250; 500; 1000; 2000 ] in
  row "%8s %18s %18s %10s\n" "n" "incremental (ms)" "naive (ms)" "speedup";
  List.iter
    (fun n ->
      let snaps = event_snapshots n in
      let (), t_inc = time_it (fun () -> ignore (run_incremental d snaps)) in
      let h = history_of_snapshots snaps in
      let (), t_naive =
        time_it (fun () -> ignore (or_die "naive" (Naive.violations h d)))
      in
      row "%8d %18.1f %18.1f %9.1fx\n" n (ms t_inc) (ms t_naive)
        (t_naive /. t_inc))
    sweep

(* ------------------------------------------------------------------ *)
(* E4 — scaling with the lookback window                               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4: space and time vs the constraint's window width u"
    "Claim: the bounded encoding stores (valuation, timestamp) pairs only\n\
     inside the window, so space grows proportionally to u and levels off\n\
     once u exceeds the whole history; per-step time follows space.";
  let n = if !quick then 1500 else 3000 in
  let snaps = event_snapshots n in
  let sweep = if !quick then [ 10; 100; 1000 ] else [ 10; 50; 100; 500; 1000; 5000; 10000 ] in
  row "%8s %14s %16s\n" "u" "space" "total (ms)";
  List.iter
    (fun u ->
      let d =
        { Formula.name = "c";
          body =
            Formula.map_intervals
              (fun _ -> Interval.bounded 0 u)
              (parse_formula "forall x. q(x) -> once[0,1] p(x)") }
      in
      let st, t = time_it (fun () -> run_incremental d snaps) in
      row "%8d %14d %16.1f\n" u (Incremental.space st) (ms t))
    sweep

(* ------------------------------------------------------------------ *)
(* E5 — scaling with the active domain                                 *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5: scaling with the active-domain size"
    "Claim: space holds one entry per valuation active in the window, so\n\
     both space and time grow with the population of the database, not\n\
     with the history.";
  let d = parse_def "constraint c: forall x. q(x) -> once[0,40] p(x) ;" in
  let steps = if !quick then 400 else 800 in
  let sweep = if !quick then [ 8; 64; 256 ] else [ 8; 32; 128; 512; 2048 ] in
  row "%8s %14s %16s\n" "domain" "space" "total (ms)";
  List.iter
    (fun domain ->
      let tr =
        Gen.random_trace ~seed:99
          { Gen.default_params with steps; domain; txn_size = 6 }
      in
      let h = or_die "materialize" (Trace.materialize tr) in
      let st, t =
        time_it (fun () -> run_incremental d (History.snapshots h))
      in
      row "%8d %14d %16.1f\n" domain (Incremental.space st) (ms t))
    sweep

(* ------------------------------------------------------------------ *)
(* E6 — scaling with temporal depth                                    *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6: scaling with the temporal depth of the constraint"
    "Claim: the checker keeps one auxiliary relation per temporal\n\
     subformula and each step touches each once, so cost grows gently\n\
     with depth; the naive evaluator re-recurses per level and blows up.";
  let n = if !quick then 200 else 400 in
  let snaps = event_snapshots n in
  let h = history_of_snapshots snaps in
  let depths = if !quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5 ] in
  row "%8s %18s %16s %14s\n" "depth" "incremental (ms)" "naive (ms)" "aux nodes";
  List.iter
    (fun depth ->
      let rec nest k =
        if k = 0 then "(exists x. p(x))"
        else Printf.sprintf "once[0,8] %s" (nest (k - 1))
      in
      let d = { Formula.name = "c"; body = parse_formula (nest depth) } in
      let st, t_inc = time_it (fun () -> run_incremental d snaps) in
      let (), t_naive =
        time_it (fun () -> ignore (or_die "naive" (Naive.violations h d)))
      in
      row "%8d %18.1f %16.1f %14d\n" depth (ms t_inc) (ms t_naive)
        (List.length (Incremental.space_detail st)))
    depths

(* ------------------------------------------------------------------ *)
(* E7 — the constraint catalog over the three scenarios                *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7: constraint catalog C1-C14 over the application scenarios"
    "Claim: on realistic workloads the incremental checker and the naive\n\
     baseline report identical violations; incremental is consistently\n\
     faster; the compiled active-rule engine tracks the incremental one.";
  let steps = if !quick then 150 else 300 in
  row "%-8s %-24s %6s %10s %10s %10s\n" "id" "constraint" "viol"
    "inc (ms)" "naive(ms)" "rules(ms)";
  List.iteri
    (fun sci (sc : Scenarios.t) ->
      let tr = sc.generate ~seed:7 ~steps ~violation_rate:0.1 in
      let h = or_die "materialize" (Trace.materialize tr) in
      let snaps = History.snapshots h in
      List.iteri
        (fun i (d : Formula.def) ->
          let vi, t_inc =
            time_it (fun () ->
                let st = or_die "create" (Incremental.create sc.catalog d) in
                let _, bad =
                  List.fold_left
                    (fun (st, bad) (time, db) ->
                      let st, v = or_die "step" (Incremental.step st ~time db) in
                      (st, if v.Incremental.satisfied then bad else bad + 1))
                    (st, 0) snaps
                in
                bad)
          in
          let vn, t_naive =
            time_it (fun () ->
                List.length (or_die "naive" (Naive.violations h d)))
          in
          let va, t_rules =
            time_it (fun () ->
                let prog = or_die "compile" (Compile.compile sc.catalog d) in
                let _, bad =
                  List.fold_left
                    (fun (eng, bad) (time, db) ->
                      let eng, ok = or_die "step" (Compile.step eng ~time db) in
                      (eng, if ok then bad else bad + 1))
                    (Compile.start prog, 0)
                    snaps
                in
                bad)
          in
          if vi <> vn || vi <> va then
            Printf.printf "  !! DISAGREEMENT on %s: inc=%d naive=%d rules=%d\n"
              d.name vi vn va;
          row "%-8s %-24s %6d %10.1f %10.1f %10.1f\n"
            (Printf.sprintf "C%d.%d" (sci + 1) (i + 1))
            d.name vi (ms t_inc) (ms t_naive) (ms t_rules))
        sc.constraints)
    Scenarios.all

(* ------------------------------------------------------------------ *)
(* E8 — ablations                                                      *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8: ablations"
    "Claim: (a) disabling pruning leaves verdicts unchanged but lets the\n\
     auxiliary state grow with the history; (b) the interpreted checker\n\
     and the compiled active-rule engine implement the same encoding, the\n\
     compiled one paying the overhead of database-resident tables.";
  let steps = if !quick then 400 else 1200 in
  let sc = Scenarios.banking in
  let tr = sc.generate ~seed:5 ~steps ~violation_rate:0.05 in
  let h = or_die "materialize" (Trace.materialize tr) in
  let snaps = History.snapshots h in
  let d = List.nth sc.constraints 2 (* big_withdraw_audited: once[0,20] *) in
  let run config =
    time_it (fun () ->
        List.fold_left
          (fun st (time, db) ->
            fst (or_die "step" (Incremental.step st ~time db)))
          (or_die "create" (Incremental.create ~config sc.catalog d))
          snaps)
  in
  let st_p, t_p = run { Incremental.prune = true } in
  let st_np, t_np = run { Incremental.prune = false } in
  let eng, t_rules =
    time_it (fun () ->
        List.fold_left
          (fun eng (time, db) -> fst (or_die "step" (Compile.step eng ~time db)))
          (Compile.start (or_die "compile" (Compile.compile sc.catalog d)))
          snaps)
  in
  row "%-34s %12s %12s\n" "variant" "space" "time (ms)";
  row "%-34s %12d %12.1f\n" "bounded encoding (pruning on)"
    (Incremental.space st_p) (ms t_p);
  row "%-34s %12d %12.1f\n" "ablation: pruning off"
    (Incremental.space st_np) (ms t_np);
  row "%-34s %12d %12.1f\n" "compiled active rules"
    (Compile.space eng) (ms t_rules)

(* ------------------------------------------------------------------ *)
(* E9 — cross-constraint subformula sharing                            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9: cross-constraint subformula sharing (extension)"
    "Claim: constraints overlapping on temporal subformulas can share one\n\
     auxiliary relation fleet-wide: the shared monitor's space stays flat\n\
     in the number of overlapping constraints (the per-constraint monitor\n\
     grows linearly), and its time grows more slowly (aux maintenance is\n\
     shared; only each constraint's first-order part is re-evaluated).";
  let module Shared = Rtic_core.Shared in
  let n = if !quick then 400 else 800 in
  let snaps = event_snapshots n in
  let steps =
    List.map (fun (t, db) -> (t, db)) snaps
  in
  let sweep = if !quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32 ] in
  row "%8s %14s %14s %12s %12s %12s\n" "K" "shared space" "per space"
    "shared ms" "per ms" "aux nodes";
  List.iter
    (fun k ->
      (* K constraints sharing the subformula once[0,40] p(x) *)
      let defs =
        List.init k (fun i ->
            parse_def
              (Printf.sprintf
                 "constraint c%d: forall x. q(x) & x >= %d -> once[0,40] \
                  p(x) ;"
                 i i))
      in
      (* The Shared monitor consumes transactions; derive them from
         consecutive snapshots (two inserts + two deletes per step). *)
      let module R = Rtic_relational in
      let txns =
        let prev = ref (R.Database.create Gen.generic_catalog) in
        List.map
          (fun (time, db) ->
            let txn =
              R.Database.fold
                (fun rel cur acc ->
                  let old = R.Database.relation_exn !prev rel in
                  let ins =
                    R.Relation.fold
                      (fun t acc -> R.Update.Insert (rel, t) :: acc)
                      (R.Relation.diff cur old) []
                  in
                  let del =
                    R.Relation.fold
                      (fun t acc -> R.Update.Delete (rel, t) :: acc)
                      (R.Relation.diff old cur) []
                  in
                  acc @ del @ ins)
                db []
            in
            prev := db;
            (time, txn))
          steps
      in
      let final_shared, t_shared =
        time_it (fun () ->
            List.fold_left
              (fun m (time, txn) ->
                fst (or_die "step" (Shared.step m ~time txn)))
              (or_die "create" (Shared.create Gen.generic_catalog defs))
              txns)
      in
      let per_states, t_per =
        time_it (fun () ->
            List.fold_left
              (fun sts (time, db) ->
                List.map
                  (fun st -> fst (or_die "step" (Incremental.step st ~time db)))
                  sts)
              (List.map
                 (fun d -> or_die "create" (Incremental.create Gen.generic_catalog d))
                 defs)
              steps)
      in
      let per_space =
        List.fold_left (fun a st -> a + Incremental.space st) 0 per_states
      in
      row "%8d %14d %14d %12.1f %12.1f %12d\n" k
        (Shared.space final_shared) per_space (ms t_shared) (ms t_per)
        (Shared.shared_nodes final_shared))
    sweep

(* ------------------------------------------------------------------ *)
(* E-PAR — multi-core scaling of the sharded monitor                   *)
(* ------------------------------------------------------------------ *)

let par () =
  header "E-PAR: wall-clock scaling of the sharded monitor (--jobs)"
    "Claim: with the constraint set sharded across a fixed worker pool the\n\
     per-transaction work parallelizes across domains, so wall-clock time\n\
     drops with the pool size (on a multi-core host) while verdicts stay\n\
     bit-for-bit identical to the sequential run. The artifact records the\n\
     host's core count: on a single-core host the speedup is ~1.0 by\n\
     construction and the numbers only measure pool overhead.";
  let module Pool = Rtic_core.Pool in
  let k = if !quick then 16 else 64 in
  let steps = if !quick then 60 else 250 in
  (* K constraints with pairwise-distinct temporal subformulas (windows
     differ), so the sharder sees K independent components to spread. *)
  let defs =
    List.init k (fun i ->
        parse_def
          (Printf.sprintf
             "constraint c%d: forall x. q(x) & x >= %d -> once[0,%d] p(x) ;"
             i (i mod 8) (20 + i)))
  in
  let tr =
    Gen.random_trace ~seed:21
      { Gen.default_params with steps; domain = 64; txn_size = 6 }
  in
  let run jobs =
    let pool = if jobs > 1 then Some (Pool.create jobs) else None in
    let reports, t =
      time_it (fun () -> or_die "run" (Monitor.run_trace ?pool defs tr))
    in
    Option.iter Pool.shutdown pool;
    (reports, t)
  in
  ignore (run 1) (* warm-up *);
  let base_reports, t1 = run 1 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "constraints=%d steps=%d cores=%d\n\n" k steps cores;
  row "%8s %14s %10s\n" "jobs" "total (ms)" "speedup";
  let series =
    List.map
      (fun jobs ->
        let reports, t = if jobs = 1 then (base_reports, t1) else run jobs in
        if reports <> base_reports then
          Printf.printf "  !! DISAGREEMENT at --jobs %d\n" jobs;
        let sp = t1 /. t in
        row "%8d %14.1f %9.2fx\n" jobs (ms t) sp;
        Json.Obj
          [ ("name", Json.Str (Printf.sprintf "jobs-%d" jobs));
            ("jobs", Json.Int jobs);
            ("cores", Json.Int cores);
            ("constraints", Json.Int k);
            ("ms", Json.Float (ms t));
            ("speedup", Json.Float sp) ])
      [ 1; 2; 4 ]
  in
  write_artifact ~experiment:"par" series

(* ------------------------------------------------------------------ *)
(* E-R — robustness: recovery time vs WAL-suffix length                *)
(* ------------------------------------------------------------------ *)

let er () =
  header "E-R: recovery time vs WAL-suffix length"
    "Claim: recovering a supervised monitor costs (load newest checkpoint,\n\
     proportional to the live state size) + (replay the WAL suffix past\n\
     it, linear in the suffix length). Columns vary the pre-checkpoint\n\
     prefix (hence state size), rows the suffix. Measured on in-memory\n\
     filesystems (no disk noise), repair off.";
  let module Supervisor = Rtic_core.Supervisor in
  let module Faults = Rtic_core.Faults in
  let sc = Scenarios.banking in
  let sweep = if !quick then [ 0; 25; 100 ] else [ 0; 25; 50; 100; 200; 400 ] in
  let prefixes = if !quick then [ 200 ] else [ 400; 800 ] in
  let config = { Supervisor.default_config with auto_checkpoint = 0 } in
  (* One damaged-and-abandoned run per (prefix, suffix): feed everything,
     checkpoint manually so exactly [suffix] records sit past the newest
     snapshot, walk away, then time [Supervisor.recover]. *)
  let measure ~prefix ~suffix =
    let tr =
      sc.generate ~seed:11 ~steps:(prefix + suffix) ~violation_rate:0.05
    in
    let fs = Faults.mem_fs () in
    let sup =
      or_die "create"
        (Supervisor.create ~fs ~config ~init:tr.Trace.init ~state_dir:"state"
           sc.catalog sc.constraints)
    in
    let feed steps =
      List.iter
        (fun (time, txn) ->
          ignore (or_die "step" (Supervisor.step sup ~time txn)))
        steps
    in
    let pre = List.filteri (fun i _ -> i < prefix) tr.Trace.steps in
    let post = List.filteri (fun i _ -> i >= prefix) tr.Trace.steps in
    feed pre;
    or_die "checkpoint" (Supervisor.checkpoint sup);
    feed post;
    let (_, info), t =
      time_it (fun () ->
          or_die "recover"
            (Supervisor.recover ~fs ~config ~init:tr.Trace.init ~repair:false
               ~state_dir:"state" sc.catalog sc.constraints))
    in
    if info.Supervisor.replayed <> suffix then
      Printf.printf "  !! expected %d replayed records, got %d\n" suffix
        info.Supervisor.replayed;
    ms t
  in
  row "%10s" "suffix";
  List.iter (fun p -> row " %18s" (Printf.sprintf "prefix=%d (ms)" p)) prefixes;
  row "\n";
  let series =
    List.map
      (fun suffix ->
        row "%10d" suffix;
        let cells =
          List.map
            (fun prefix ->
              let t = measure ~prefix ~suffix in
              row " %18.2f" t;
              (prefix, t))
            prefixes
        in
        row "\n";
        Json.Obj
          [ ("name", Json.Str (Printf.sprintf "suffix-%d" suffix));
            ("wal_suffix", Json.Int suffix);
            ("recover_ms",
             Json.List
               (List.map
                  (fun (prefix, t) ->
                    Json.Obj
                      [ ("prefix", Json.Int prefix);
                        ("ms", Json.Float t) ])
                  cells)) ])
      sweep
  in
  (* Group-commit series: feed the same banking workload through the
     supervisor's commit queue at batch sizes 1/16/128 on both WAL
     formats — sustained feed throughput, then the cost of recovering
     the directory the run left behind.  On the in-memory filesystem a
     sync is free and the persistent append handle already removed the
     per-append open/close, so the in-memory rows are expected to be
     near-flat across group sizes — they pin the bookkeeping overhead of
     the commit queue at ~zero.  The durability win (one fsync per group
     instead of one per transaction) only shows on a real disk. *)
  let gc_steps = if !quick then 300 else 2000 in
  row "\n%8s %6s %8s %16s %14s\n" "group" "wal" "txns" "feed txn/s"
    "recover ms";
  let gc_series =
    List.concat_map
      (fun wal ->
        List.map
          (fun group ->
            let tr =
              sc.generate ~seed:13 ~steps:gc_steps ~violation_rate:0.05
            in
            let fs = Faults.mem_fs () in
            let config =
              { Supervisor.default_config with
                auto_checkpoint = 0;
                group_commit = group;
                wal_format = wal }
            in
            let sup =
              or_die "create"
                (Supervisor.create ~fs ~config ~init:tr.Trace.init
                   ~state_dir:"state" sc.catalog sc.constraints)
            in
            let (), t_feed =
              time_it (fun () ->
                  List.iter
                    (fun (time, txn) ->
                      ignore (or_die "submit" (Supervisor.submit sup ~time txn)))
                    tr.Trace.steps;
                  ignore (Supervisor.flush sup))
            in
            let _, t_rec =
              time_it (fun () ->
                  or_die "recover"
                    (Supervisor.recover ~fs ~config ~init:tr.Trace.init
                       ~repair:false ~state_dir:"state" sc.catalog
                       sc.constraints))
            in
            let per_sec = float_of_int gc_steps /. Float.max t_feed 1e-9 in
            row "%8d %6d %8d %16.1f %14.2f\n" group wal gc_steps per_sec
              (ms t_rec);
            Json.Obj
              [ ("name", Json.Str (Printf.sprintf "gc-g%d-w%d" group wal));
                ("group", Json.Int group);
                ("wal_format", Json.Int wal);
                ("txns", Json.Int gc_steps);
                ("feed_txns_per_sec", Json.Float per_sec);
                ("recover_ms", Json.Float (ms t_rec)) ])
          [ 1; 16; 128 ])
      [ 1; 2 ]
  in
  write_artifact ~experiment:"er" (series @ gc_series)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "MICRO: per-transaction latency (Bechamel, ns/run)"
    "One committed transaction through each engine, measured on a warmed\n\
     500-state prefix of the event workload.";
  let open Bechamel in
  let d = parse_def "constraint c: forall x. q(x) -> once[0,50] p(x) ;" in
  let n = 500 in
  let snaps = event_snapshots n in
  let last_t = fst (List.nth snaps (n - 1)) in
  let db = snd (List.nth snaps (n - 1)) in
  let st = run_incremental d snaps in
  let eng =
    List.fold_left
      (fun eng (time, db) -> fst (or_die "step" (Compile.step eng ~time db)))
      (Compile.start (or_die "compile" (Compile.compile Gen.generic_catalog d)))
      snaps
  in
  let h = history_of_snapshots snaps in
  (* Instrumented twins of the incremental checker: same warmed state but
     with a metrics recorder / a span tracer attached, to expose the
     instrumentation overhead next to the uninstrumented baseline. The
     tracer serializes into a buffer that is drained between fills, so the
     measured cost is event construction + serialization, not file I/O. *)
  let st_m = run_incremental ~metrics:(Metrics.create ()) d snaps in
  let sink = Buffer.create 65536 in
  let tracer =
    Rtic_core.Tracer.create
      ~emit:(fun line ->
        if Buffer.length sink > 1_000_000 then Buffer.clear sink;
        Buffer.add_string sink line;
        Buffer.add_char sink '\n')
      ()
  in
  let st_t = run_incremental ~tracer d snaps in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    last_t + !counter
  in
  let tests =
    Test.make_grouped ~name:"step"
      [ Test.make ~name:"incremental"
          (Staged.stage (fun () ->
               ignore (or_die "step" (Incremental.step st ~time:(fresh ()) db))));
        Test.make ~name:"incremental-metrics"
          (Staged.stage (fun () ->
               ignore (or_die "step" (Incremental.step st_m ~time:(fresh ()) db))));
        Test.make ~name:"incremental-traced"
          (Staged.stage (fun () ->
               ignore (or_die "step" (Incremental.step st_t ~time:(fresh ()) db))));
        Test.make ~name:"active-rules"
          (Staged.stage (fun () ->
               ignore (or_die "step" (Compile.step eng ~time:(fresh ()) db))));
        Test.make ~name:"naive-recheck"
          (Staged.stage (fun () ->
               ignore (or_die "naive" (Naive.holds_at h (n - 1) d.Formula.body)))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    (* --quick: a shorter quota for the runtest regression smoke; estimates
       are noisier, which the smoke's tolerances account for. *)
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.35 else 1.0))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let series =
    List.filter_map
      (fun (name, ols_result) ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] ->
          row "%-28s %14.0f ns/run\n" name est;
          Some
            (Json.Obj
               [ ("name", Json.Str name); ("ns_per_run", Json.Float est) ])
        | _ ->
          row "%-28s %14s\n" name "n/a";
          None)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  in
  write_artifact ~experiment:"micro" series

(* ------------------------------------------------------------------ *)
(* E-SERVE — streaming service throughput                              *)
(* ------------------------------------------------------------------ *)

let serve () =
  header "E-SERVE: streaming service throughput (rtic-serve/1 protocol)"
    "Claim: serving a transaction stream through the protocol engine —\n\
     request parse, supervised check with WAL append, JSON reply — costs a\n\
     small constant per transaction over the batch checker, so a resident\n\
     monitor sustains thousands of transactions per second. Measured\n\
     in-process (Server.handle_lines over an in-memory filesystem): no\n\
     socket or scheduler noise, the protocol + checking cost itself.\n\
     tools/drive.exe measures the same workload across a real socket.";
  let module Server = Rtic_core.Server in
  let module Faults = Rtic_core.Faults in
  let module Textio = Rtic_relational.Textio in
  let module Update = Rtic_relational.Update in
  let module Schema = Rtic_relational.Schema in
  let steps = if !quick then 200 else 1000 in
  let op_line = function
    | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
    | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  let expect_ok what = function
    | [ reply ] ->
      (match Json.of_string reply with
       | Ok doc when Json.member "ok" doc = Some (Json.Bool true) -> ()
       | _ ->
         Printf.eprintf "bench: serve %s failed: %s\n" what reply;
         exit 1)
    | rs ->
      Printf.eprintf "bench: serve %s: expected one reply, got %d\n" what
        (List.length rs);
      exit 1
  in
  row "%-12s %8s %10s %12s %10s %10s %10s\n" "scenario" "txns" "ms"
    "txns/sec" "p50 us" "p95 us" "p99 us";
  let series =
    List.map
      (fun (sc : Scenarios.t) ->
        let tr = sc.generate ~seed:7 ~steps ~violation_rate:0.1 in
        let spec_text =
          String.concat "\n"
            (List.map Textio.schema_to_string
               (Schema.Catalog.schemas sc.catalog)
             @ List.map Rtic_mtl.Pretty.def_to_string sc.constraints)
          ^ "\n"
        in
        let fs = Faults.mem_fs () in
        or_die "spec" (fs.Faults.write_file "bench.spec" spec_text);
        let srv = Server.create ~fs () in
        expect_ok "open"
          (Server.handle_lines srv [ Printf.sprintf "open s bench.spec" ]);
        let lat = Array.make (List.length tr.Trace.steps) 0.0 in
        let t_start = Unix.gettimeofday () in
        List.iteri
          (fun i (time, txn) ->
            let lines =
              Printf.sprintf "txn s %d %d" time (List.length txn)
              :: List.map op_line txn
            in
            let t0 = Unix.gettimeofday () in
            expect_ok "txn" (Server.handle_lines srv lines);
            lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e6)
          tr.Trace.steps;
        let elapsed = Unix.gettimeofday () -. t_start in
        expect_ok "close" (Server.handle_lines srv [ "close s" ]);
        Array.sort compare lat;
        let txns = List.length tr.Trace.steps in
        let per_sec = float_of_int txns /. elapsed in
        let p50 = percentile lat 0.50
        and p95 = percentile lat 0.95
        and p99 = percentile lat 0.99 in
        row "%-12s %8d %10.1f %12.1f %10.1f %10.1f %10.1f\n" sc.name txns
          (ms elapsed) per_sec p50 p95 p99;
        Json.Obj
          [ ("name", Json.Str sc.name);
            ("txns", Json.Int txns);
            ("ms", Json.Float (ms elapsed));
            ("txns_per_sec", Json.Float per_sec);
            ("p50_us", Json.Float p50);
            ("p95_us", Json.Float p95);
            ("p99_us", Json.Float p99) ])
      [ Scenarios.banking; Scenarios.monitoring ]
  in
  (* Multi-client series: the same banking workload split into C disjoint
     contiguous slices, each fed on its own connection against its own
     session and drained round-robin with the transport's quantum — the
     in-process shape of C concurrent clients on `rtic serve --socket`.
     On a single CPU this measures fairness overhead, not parallel
     speedup: the engine serializes requests, so throughput should hold
     roughly flat as C grows. *)
  let ok_reply what reply =
    match Json.of_string reply with
    | Ok doc when Json.member "ok" doc = Some (Json.Bool true) -> ()
    | _ ->
      Printf.eprintf "bench: serve %s failed: %s\n" what reply;
      exit 1
  in
  let multi_series =
    List.map
      (fun nclients ->
        let sc = Scenarios.banking in
        let tr = sc.generate ~seed:7 ~steps ~violation_rate:0.1 in
        let spec_text =
          String.concat "\n"
            (List.map Textio.schema_to_string
               (Schema.Catalog.schemas sc.catalog)
             @ List.map Rtic_mtl.Pretty.def_to_string sc.constraints)
          ^ "\n"
        in
        let fs = Faults.mem_fs () in
        or_die "spec" (fs.Faults.write_file "bench.spec" spec_text);
        let srv = Server.create ~fs () in
        let conns = Array.init nclients (fun _ -> Server.connect srv) in
        Array.iteri
          (fun i c ->
            Server.conn_feed_line c (Printf.sprintf "open c%d bench.spec" i);
            match Server.conn_drain c with
            | [ r ] -> ok_reply "open" r
            | rs ->
              Printf.eprintf "bench: serve open: %d replies\n" (List.length rs);
              exit 1)
          conns;
        let all = Array.of_list tr.Trace.steps in
        let total = Array.length all in
        let base = total / nclients and extra = total mod nclients in
        let pos = Array.init nclients (fun i -> (i * base) + min i extra) in
        let fin =
          Array.init nclients (fun i ->
              pos.(i) + base + if i < extra then 1 else 0)
        in
        let answered = ref 0 in
        let t_start = Unix.gettimeofday () in
        while !answered < total do
          for i = 0 to nclients - 1 do
            if pos.(i) < fin.(i) then begin
              let time, txn = all.(pos.(i)) in
              pos.(i) <- pos.(i) + 1;
              List.iter
                (Server.conn_feed_line conns.(i))
                (Printf.sprintf "txn c%d %d %d" i time (List.length txn)
                 :: List.map op_line txn)
            end
          done;
          Array.iter
            (fun c ->
              List.iter
                (fun r ->
                  ok_reply "txn" r;
                  incr answered)
                (Server.conn_drain ~limit:32 c))
            conns
        done;
        let elapsed = Unix.gettimeofday () -. t_start in
        Array.iter Server.disconnect conns;
        let name = Printf.sprintf "%s-c%d" sc.name nclients in
        let per_sec = float_of_int total /. elapsed in
        row "%-12s %8d %10.1f %12.1f %10s %10s %10s\n" name total (ms elapsed)
          per_sec "-" "-" "-";
        Json.Obj
          [ ("name", Json.Str name);
            ("clients", Json.Int nclients);
            ("txns", Json.Int total);
            ("ms", Json.Float (ms elapsed));
            ("txns_per_sec", Json.Float per_sec) ])
      [ 1; 4; 16 ]
  in
  (* Batched-request series: the same banking workload packed B
     transactions per txn request (FORMATS.md §7), the session opened
     with a matching group-commit window so the supervisor pays one WAL
     write+sync per request instead of one per transaction.  Measures
     the round-trip amortization tools/drive.exe --batch exercises over
     a real socket. *)
  let batch_series =
    List.map
      (fun b ->
        let sc = Scenarios.banking in
        let tr = sc.generate ~seed:7 ~steps ~violation_rate:0.1 in
        let spec_text =
          String.concat "\n"
            (List.map Textio.schema_to_string
               (Schema.Catalog.schemas sc.catalog)
             @ List.map Rtic_mtl.Pretty.def_to_string sc.constraints)
          ^ "\n"
        in
        let fs = Faults.mem_fs () in
        or_die "spec" (fs.Faults.write_file "bench.spec" spec_text);
        let srv = Server.create ~fs () in
        expect_ok "open"
          (Server.handle_lines srv
             [ (if b = 1 then "open s bench.spec"
                else Printf.sprintf "open s bench.spec group-commit=%d" b) ]);
        let rec chunks = function
          | [] -> []
          | l ->
            let take = List.filteri (fun j _ -> j < b) l in
            let rest = List.filteri (fun j _ -> j >= b) l in
            take :: chunks rest
        in
        let requests =
          List.map
            (fun group ->
              let header =
                "txn s"
                ^ String.concat ""
                    (List.map
                       (fun (time, txn) ->
                         Printf.sprintf " %d %d" time (List.length txn))
                       group)
              in
              header
              :: List.concat_map
                   (fun (_, txn) -> List.map op_line txn)
                   group)
            (chunks tr.Trace.steps)
        in
        let t_start = Unix.gettimeofday () in
        List.iter (fun lines -> expect_ok "txn" (Server.handle_lines srv lines))
          requests;
        let elapsed = Unix.gettimeofday () -. t_start in
        expect_ok "close" (Server.handle_lines srv [ "close s" ]);
        let txns = List.length tr.Trace.steps in
        let name = Printf.sprintf "%s-b%d" sc.name b in
        let per_sec = float_of_int txns /. elapsed in
        row "%-12s %8d %10.1f %12.1f %10s %10s %10s\n" name txns (ms elapsed)
          per_sec "-" "-" "-";
        Json.Obj
          [ ("name", Json.Str name);
            ("batch", Json.Int b);
            ("txns", Json.Int txns);
            ("ms", Json.Float (ms elapsed));
            ("txns_per_sec", Json.Float per_sec) ])
      [ 1; 16; 128 ]
  in
  write_artifact ~experiment:"serve" (series @ multi_series @ batch_series)

(* ------------------------------------------------------------------ *)
(* E-REP — repair-search latency vs violation depth                    *)
(* ------------------------------------------------------------------ *)

let rep () =
  header "E-REP: repair-search latency vs violation depth"
    "Claim: the bounded founded-repair search (rtic repair /\n\
     on-error=repair) pays breadth-first chase time growing with the\n\
     repair cardinality — capped by the budget, never unbounded — while\n\
     the sound unrepairability classification is a syntactic check,\n\
     near-constant in the state. Row depth-k forces a minimal repair of\n\
     exactly k inserts; every search starts from the same violating\n\
     state.";
  let module Repair = Rtic_core.Repair in
  let iters = if !quick then 15 else 80 in
  let cat = Gen.generic_catalog in
  let db = Database.create cat in
  let search c =
    or_die "search" (Repair.search ~checkers:[ c ] ~time:0 db)
  in
  let measure name spec describe =
    let c = or_die "checker" (Incremental.create cat (parse_def spec)) in
    let steps, actions = describe (search c) in
    let (), t =
      time_it (fun () ->
          for _ = 1 to iters do
            ignore (search c)
          done)
    in
    let us = ms t *. 1000.0 /. float_of_int iters in
    row "%-14s %12.1f %14d %9d\n" name us steps actions;
    Json.Obj
      [ ("name", Json.Str name);
        ("search_us", Json.Float us);
        ("oracle_steps", Json.Int steps);
        ("actions", Json.Int actions) ]
  in
  row "%-14s %12s %14s %9s\n" "row" "search us" "oracle steps" "actions";
  let depth_rows =
    List.map
      (fun k ->
        let body =
          String.concat " and "
            (List.init k (fun i -> Printf.sprintf "p(%d)" (i + 1)))
        in
        measure
          (Printf.sprintf "depth-%d" k)
          (Printf.sprintf "constraint c: %s ;" body)
          (function
            | Repair.Repaired r when List.length r.actions = k ->
              (r.oracle_steps, k)
            | _ ->
              Printf.eprintf "bench: depth-%d: expected a %d-action repair\n"
                k k;
              exit 1))
      [ 1; 2; 3 ]
  in
  let unrep_row =
    measure "unrepairable" "constraint c: prev (exists x. p(x)) ;"
      (function
        | Repair.Unrepairable _ -> (0, 0)
        | _ ->
          Printf.eprintf "bench: expected an unrepairable classification\n";
          exit 1)
  in
  write_artifact ~experiment:"rep" (depth_rows @ [ unrep_row ])

(* ------------------------------------------------------------------ *)
(* E-MET — telemetry overhead                                          *)
(* ------------------------------------------------------------------ *)

let met () =
  header "E-MET: telemetry overhead (rates, histograms, scrapes)"
    "Claim: live telemetry — per-transaction rate ticks, log-bucket\n\
     latency histograms, and rtic-metrics/1 snapshot assembly — costs at\n\
     most a few percent of serve throughput, so it can stay on in\n\
     production. Three series over the same banking workload through\n\
     Server.handle_lines: telemetry disabled, telemetry enabled, and\n\
     telemetry enabled with a Prometheus render of the full snapshot\n\
     every 25 transactions (a hard-polling scraper).";
  let module Server = Rtic_core.Server in
  let module Telemetry = Rtic_core.Telemetry in
  let module Faults = Rtic_core.Faults in
  let module Textio = Rtic_relational.Textio in
  let module Update = Rtic_relational.Update in
  let module Schema = Rtic_relational.Schema in
  let steps = if !quick then 300 else 2000 in
  let op_line = function
    | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
    | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t
  in
  let expect_ok what = function
    | [ reply ] ->
      (match Json.of_string reply with
       | Ok doc when Json.member "ok" doc = Some (Json.Bool true) -> ()
       | _ ->
         Printf.eprintf "bench: met %s failed: %s\n" what reply;
         exit 1)
    | rs ->
      Printf.eprintf "bench: met %s: expected one reply, got %d\n" what
        (List.length rs);
      exit 1
  in
  let sc = Scenarios.banking in
  let tr = sc.generate ~seed:7 ~steps ~violation_rate:0.1 in
  let spec_text =
    String.concat "\n"
      (List.map Textio.schema_to_string (Schema.Catalog.schemas sc.catalog)
       @ List.map Rtic_mtl.Pretty.def_to_string sc.constraints)
    ^ "\n"
  in
  let run_once ~telemetry ~scrape_every =
    let fs = Faults.mem_fs () in
    or_die "spec" (fs.Faults.write_file "bench.spec" spec_text);
    let srv =
      Server.create ~fs ~config:{ Server.max_pending = 64; telemetry } ()
    in
    expect_ok "open" (Server.handle_lines srv [ "open s bench.spec" ]);
    let t_start = Unix.gettimeofday () in
    List.iteri
      (fun i (time, txn) ->
        let lines =
          Printf.sprintf "txn s %d %d" time (List.length txn)
          :: List.map op_line txn
        in
        expect_ok "txn" (Server.handle_lines srv lines);
        if scrape_every > 0 && (i + 1) mod scrape_every = 0 then
          ignore (Telemetry.to_prometheus (Server.snapshot srv)))
      tr.Trace.steps;
    let elapsed = Unix.gettimeofday () -. t_start in
    expect_ok "close" (Server.handle_lines srv [ "close s" ]);
    float_of_int (List.length tr.Trace.steps) /. elapsed
  in
  (* Best of three passes per configuration: on a shared machine the
     difference under test (a few percent) is below single-run noise. *)
  let best ~telemetry ~scrape_every =
    ignore (run_once ~telemetry ~scrape_every);
    let a = run_once ~telemetry ~scrape_every in
    let b = run_once ~telemetry ~scrape_every in
    let c = run_once ~telemetry ~scrape_every in
    Float.max a (Float.max b c)
  in
  let txns = List.length tr.Trace.steps in
  row "%-16s %8s %12s %14s\n" "config" "txns" "txns/sec" "overhead %";
  let base = best ~telemetry:false ~scrape_every:0 in
  let entry name per_sec =
    let overhead = (base -. per_sec) /. base *. 100.0 in
    row "%-16s %8d %12.1f %14.1f\n" name txns per_sec overhead;
    Json.Obj
      [ ("name", Json.Str name);
        ("txns", Json.Int txns);
        ("txns_per_sec", Json.Float per_sec);
        ("overhead_pct", Json.Float overhead) ]
  in
  let off_row = entry "telemetry-off" base in
  let on_row = entry "telemetry-on" (best ~telemetry:true ~scrape_every:0) in
  let scraped_row =
    entry "scraped-every-25" (best ~telemetry:true ~scrape_every:25)
  in
  write_artifact ~experiment:"met" [ off_row; on_row; scraped_row ]

(* ------------------------------------------------------------------ *)
(* E-IDX — indexed joins, the query planner, split-based pruning       *)
(* ------------------------------------------------------------------ *)

let idx () =
  header "E-IDX: hash joins, the query planner, and split-based pruning"
    "Claim: indexing removes the remaining scans from the evaluator and\n\
     the temporal kernel. An n-to-n equi-join runs in n log n through the\n\
     hash join instead of the nested loop's n^2; the planner pushes a\n\
     selective guard below a join so the unfiltered intermediate is never\n\
     materialized; and a wide-window monitoring step where nothing expires\n\
     prunes in O(log n) instead of refiltering every timestamp. Results\n\
     are identical on every path.";
  let module Relation = Rtic_relational.Relation in
  let module Algebra = Rtic_relational.Algebra in
  let module Codd = Rtic_eval.Codd in
  let module Valrel = Rtic_eval.Valrel in
  let secs t = Float.max t 1e-9 in
  let repeat k f = for _ = 1 to k do ignore (f ()) done in
  (* hash join against the definitional nested loop, high cardinality *)
  let n_join = if !quick then 500 else 4_000 in
  let n_big = if !quick then 10_000 else 50_000 in
  let join_reps = if !quick then 20 else 3 in
  let rel n = Relation.of_list 1 (List.init n (fun i -> [| Value.Int i |])) in
  let db0 = Database.create Gen.generic_catalog in
  let hash_join a b =
    or_die "join"
      (Algebra.eval db0 (Algebra.Join ([ (0, 0) ], Const a, Const b)))
  in
  let nested_join a b =
    Relation.fold
      (fun ta acc ->
        Relation.fold
          (fun tb acc ->
            if Value.equal ta.(0) tb.(0) then
              Relation.add (Array.append ta tb) acc
            else acc)
          b acc)
      a (Relation.empty 2)
  in
  let a = rel n_join and b = rel n_join in
  if not (Relation.equal (hash_join a b) (nested_join a b)) then begin
    prerr_endline "bench: idx: hash join disagrees with the nested loop";
    exit 1
  end;
  let (), t_hash =
    time_it (fun () -> repeat join_reps (fun () -> hash_join a b))
  in
  let (), t_nested =
    time_it (fun () -> repeat join_reps (fun () -> nested_join a b))
  in
  let big_a = rel n_big and big_b = rel n_big in
  let (), t_big =
    time_it (fun () -> repeat join_reps (fun () -> hash_join big_a big_b))
  in
  let per_sec n t = float_of_int (n * join_reps) /. secs t in
  let join_speedup = secs t_nested /. secs t_hash in
  row "%-16s %8s %14s %10s\n" "join" "rows" "rows/sec" "speedup";
  row "%-16s %8d %14.0f %9.1fx\n" "hash-vs-nested" n_join
    (per_sec n_join t_hash) join_speedup;
  row "%-16s %8d %14.0f %10s\n" "hash-large" n_big (per_sec n_big t_big) "-";
  (* planner: a selective guard over a join with one large operand *)
  let m = if !quick then 2_000 else 20_000 in
  let q_reps = if !quick then 20 else 10 in
  let db =
    let dbr = ref (Database.create Gen.generic_catalog) in
    for i = 0 to m - 1 do
      dbr :=
        or_die "ins r"
          (Database.insert !dbr "r" [| Value.Int i; Value.Int (i mod 97) |]);
      dbr := or_die "ins p" (Database.insert !dbr "p" [| Value.Int i |])
    done;
    !dbr
  in
  let f = parse_formula "r(x, y) & p(x) & x < 8" in
  let eval plan = or_die "query" (Codd.eval_via_algebra ~plan db f) in
  if not (Valrel.equal (eval true) (eval false)) then begin
    prerr_endline "bench: idx: planned query disagrees with unplanned";
    exit 1
  end;
  let (), t_plan = time_it (fun () -> repeat q_reps (fun () -> eval true)) in
  let (), t_noplan = time_it (fun () -> repeat q_reps (fun () -> eval false)) in
  let plan_speedup = secs t_noplan /. secs t_plan in
  let evals_per_sec = float_of_int q_reps /. secs t_plan in
  row "\n%-16s %8s %14s %10s\n" "query" "rows" "evals/sec" "speedup";
  row "%-16s %8d %14.1f %9.2fx\n" "planned" m evals_per_sec plan_speedup;
  (* split-based pruning: wide window, one hot row, nothing ever expires *)
  let n_steps = if !quick then 2_000 else 20_000 in
  let d = parse_def "constraint c: exists x. once[0,100000000] p(x) ;" in
  let dbp =
    or_die "ins p"
      (Database.insert (Database.create Gen.generic_catalog) "p"
         [| Value.Int 0 |])
  in
  let (), t_steps =
    time_it (fun () ->
        let st = ref (or_die "create" (Incremental.create Gen.generic_catalog d)) in
        for time = 1 to n_steps do
          let st', v = or_die "step" (Incremental.step !st ~time dbp) in
          if not v.Incremental.satisfied then begin
            prerr_endline "bench: idx: prune workload unexpectedly violated";
            exit 1
          end;
          st := st'
        done)
  in
  let steps_per_sec = float_of_int n_steps /. secs t_steps in
  row "\n%-16s %8s %14s\n" "prune" "steps" "steps/sec";
  row "%-16s %8d %14.0f\n" "wide-window" n_steps steps_per_sec;
  let series =
    [ Json.Obj
        [ ("name", Json.Str "hash-join");
          ("rows", Json.Int n_join);
          ("rows_per_sec", Json.Float (per_sec n_join t_hash));
          ("join_speedup", Json.Float join_speedup) ];
      Json.Obj
        [ ("name", Json.Str "hash-join-large");
          ("rows", Json.Int n_big);
          ("rows_per_sec", Json.Float (per_sec n_big t_big)) ];
      Json.Obj
        [ ("name", Json.Str "planned-query");
          ("rows", Json.Int m);
          ("evals_per_sec", Json.Float evals_per_sec);
          ("plan_speedup", Json.Float plan_speedup) ];
      Json.Obj
        [ ("name", Json.Str "window-prune");
          ("steps", Json.Int n_steps);
          ("steps_per_sec", Json.Float steps_per_sec) ] ]
  in
  write_artifact ~experiment:"idx" series

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("par", par); ("er", er);
    ("serve", serve); ("rep", rep); ("met", met); ("idx", idx);
    ("micro", micro) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    if args = [] then experiments
    else
      List.map
        (fun a ->
          match List.assoc_opt (String.lowercase_ascii a) experiments with
          | Some f -> (a, f)
          | None ->
            Printf.eprintf "bench: unknown experiment %s (have: %s)\n" a
              (String.concat ", " (List.map fst experiments));
            exit 2)
        args
  in
  Printf.printf
    "rtic experiment harness — validating the claims of Chomicki (PODS'92)\n";
  List.iter (fun (_, f) -> f ()) selected
